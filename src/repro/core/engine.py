"""The explanation engine: FEO's public facade.

:class:`ExplanationEngine` wires together everything a consumer-facing
application needs:

* the combined ontology (EO + food ontology + FEO) and the food knowledge
  graph, loaded once;
* the Health Coach substitute for producing recommendations;
* the scenario builder (assemble + reason) and the nine per-type
  explanation generators.

Typical use::

    engine = ExplanationEngine()
    user, context = paper_user(), paper_context()
    explanation = engine.ask("Why should I eat Cauliflower Potato Curry?", user, context)
    print(explanation.text)
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import UnknownEntityError
from ..foodkg.catalog import build_core_catalog
from ..foodkg.schema import FoodCatalog
from ..recommender.health_coach import HealthCoach, Recommendation
from ..users.context import SystemContext
from ..users.profile import UserProfile
from .explanation import Explanation
from .generators import (
    CaseBasedExplanationGenerator,
    ContextualExplanationGenerator,
    ContrastiveExplanationGenerator,
    CounterfactualExplanationGenerator,
    EverydayExplanationGenerator,
    ScientificExplanationGenerator,
    SimulationExplanationGenerator,
    StatisticalExplanationGenerator,
    TraceBasedExplanationGenerator,
)
from .questions import (
    ContrastiveQuestion,
    Question,
    QuestionType,
    WhatIfConditionQuestion,
    WhatIfIngredientQuestion,
    WhyQuestion,
    parse_question,
)
from .scenario import Scenario, ScenarioBuilder

__all__ = ["ExplanationEngine"]

#: The explanation type the engine picks for each question type when the
#: caller does not request one explicitly (the paper's primary mapping).
DEFAULT_TYPE_FOR_QUESTION: Dict[QuestionType, str] = {
    QuestionType.WHY: "contextual",
    QuestionType.CONTRASTIVE: "contrastive",
    QuestionType.WHAT_IF_CONDITION: "counterfactual",
    QuestionType.WHAT_IF_INGREDIENT: "counterfactual",
}


class ExplanationEngine:
    """Generates FEO explanations for user questions about food recommendations."""

    def __init__(
        self,
        catalog: Optional[FoodCatalog] = None,
        population: Optional[Sequence[Tuple[UserProfile, SystemContext]]] = None,
        builder: Optional[ScenarioBuilder] = None,
    ) -> None:
        if builder is not None:
            # An injected builder wins: a sharded service hands every shard
            # its own builder (own materialisation cache, own axiom index)
            # over one shared base graph, so shards never contend on a
            # single closure cache.  The builder's catalog is authoritative.
            self.catalog = builder.catalog
            self.builder = builder
        else:
            self.catalog = catalog if catalog is not None else build_core_catalog()
            self.builder = ScenarioBuilder(self.catalog)
        self.recommender = HealthCoach(self.catalog)
        self._generators = {
            "contextual": ContextualExplanationGenerator(),
            "contrastive": ContrastiveExplanationGenerator(),
            "counterfactual": CounterfactualExplanationGenerator(),
            "scientific": ScientificExplanationGenerator(self.catalog),
            "statistical": StatisticalExplanationGenerator(self.catalog),
            "case_based": CaseBasedExplanationGenerator(self.catalog, population=population),
            "trace_based": TraceBasedExplanationGenerator(),
            "everyday": EverydayExplanationGenerator(self.catalog),
            "simulation_based": SimulationExplanationGenerator(self.catalog),
        }

    # ------------------------------------------------------------------
    @property
    def supported_explanation_types(self) -> List[str]:
        """The explanation-type keys this engine can generate (Table I coverage)."""
        return sorted(self._generators)

    def generator(self, explanation_type: str):
        """Return the generator registered for ``explanation_type``.

        Raises :class:`~repro.errors.UnknownEntityError` (listing the supported
        types, and a ``KeyError`` subclass) for unknown keys.
        """
        try:
            return self._generators[explanation_type]
        except KeyError as exc:
            raise UnknownEntityError(
                f"Unknown explanation type {explanation_type!r}; "
                f"supported: {self.supported_explanation_types}"
            ) from exc

    # ------------------------------------------------------------------
    def build_scenario(
        self,
        question: Question,
        user: UserProfile,
        context: SystemContext,
        recommendation: Optional[Recommendation] = None,
    ) -> Scenario:
        """Assemble and reason over the scenario graph for ``question``."""
        return self.builder.build(question, user, context, recommendation)

    def update_scenario(self, scenario: Scenario, **additions) -> Scenario:
        """Incrementally grow a live scenario (new preferences, restrictions,
        recommendation) without re-materialising its closure.

        Keyword arguments are those of
        :meth:`repro.core.scenario.ScenarioBuilder.update_scenario`.
        """
        return self.builder.update_scenario(scenario, **additions)

    def explain(
        self,
        question: Question,
        user: UserProfile,
        context: SystemContext,
        explanation_type: Optional[str] = None,
        recommendation: Optional[Recommendation] = None,
        scenario: Optional[Scenario] = None,
    ) -> Explanation:
        """Produce an explanation for ``question``.

        ``explanation_type`` overrides the default mapping (e.g. ask for a
        scientific explanation of a why-question).  A pre-built ``scenario``
        can be supplied to amortise reasoning across several explanation
        types for the same question.
        """
        chosen_type = explanation_type or DEFAULT_TYPE_FOR_QUESTION[question.question_type]
        generator = self.generator(chosen_type)
        if scenario is None:
            scenario = self.build_scenario(question, user, context, recommendation)
        return generator.generate(scenario)

    def explain_all_types(
        self,
        question: Question,
        user: UserProfile,
        context: SystemContext,
        recommendation: Optional[Recommendation] = None,
    ) -> Dict[str, Explanation]:
        """Generate every supported explanation type for one question."""
        scenario = self.build_scenario(question, user, context, recommendation)
        return {
            name: generator.generate(scenario)
            for name, generator in sorted(self._generators.items())
        }

    def ask(
        self,
        question_text: str,
        user: UserProfile,
        context: SystemContext,
        explanation_type: Optional[str] = None,
    ) -> Explanation:
        """Parse a natural-language question and explain it."""
        question = parse_question(question_text)
        return self.explain(question, user, context, explanation_type=explanation_type)

    # ------------------------------------------------------------------
    # Convenience wrappers for the three paper competency questions
    # ------------------------------------------------------------------
    def contextual(self, recipe: str, user: UserProfile, context: SystemContext) -> Explanation:
        """CQ1: 'Why should I eat <recipe>?'"""
        question = WhyQuestion(text=f"Why should I eat {recipe}?", recipe=recipe)
        return self.explain(question, user, context, explanation_type="contextual")

    def contrastive(self, primary: str, secondary: str,
                    user: UserProfile, context: SystemContext) -> Explanation:
        """CQ2: 'Why should I eat <primary> over <secondary>?'"""
        question = ContrastiveQuestion(
            text=f"Why should I eat {primary} over {secondary}?",
            primary=primary, secondary=secondary,
        )
        return self.explain(question, user, context, explanation_type="contrastive")

    def counterfactual_condition(self, condition: str,
                                 user: UserProfile, context: SystemContext) -> Explanation:
        """CQ3: 'What if I was <condition>?'"""
        question = WhatIfConditionQuestion(
            text=f"What if I was {condition.replace('_', ' ')}?", condition=condition,
        )
        return self.explain(question, user, context, explanation_type="counterfactual")

    # ------------------------------------------------------------------
    def recommend_and_explain(
        self,
        user: UserProfile,
        context: SystemContext,
        top_k: int = 3,
        explanation_type: str = "contextual",
    ) -> List[Tuple[Recommendation, Explanation]]:
        """Run the Health Coach and explain each of its top recommendations."""
        out: List[Tuple[Recommendation, Explanation]] = []
        for recommendation in self.recommender.recommend(user, context, top_k=top_k):
            question = WhyQuestion(
                text=f"Why should I eat {recommendation.recipe}?",
                recipe=recommendation.recipe,
            )
            explanation = self.explain(
                question, user, context,
                explanation_type=explanation_type, recommendation=recommendation,
            )
            out.append((recommendation, explanation))
        return out
