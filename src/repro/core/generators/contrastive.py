"""Contrastive explanations (competency question 2, Listing 2).

A contrastive explanation compares two parameters of the same type: the
facts that support the primary parameter and the foils that count against
the secondary one (Figure 3 semantics).  The generator runs the Listing 2
query over the inferred graph, which relies on the reasoner having
classified individuals into ``eo:Fact`` and ``eo:Foil``.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from ..explanation import Explanation, ExplanationItem
from ..queries import contrastive_query, evaluate_contrastive
from ..scenario import Scenario
from ..templates import render_contrastive
from .base import ExplanationGenerator, local_name

__all__ = ["ContrastiveExplanationGenerator"]


class ContrastiveExplanationGenerator(ExplanationGenerator):
    """Generates contrastive explanations for 'Why A over B?' questions."""

    explanation_type = "contrastive"

    def generate(self, scenario: Scenario, **kwargs) -> Explanation:
        # Evaluate via the prepared-query cache (parse once per process);
        # the substituted text is kept for display / --show-query.
        query_text = contrastive_query(scenario.question_iri)
        result = evaluate_contrastive(scenario.inferred, scenario.question_iri)

        facts: Dict[str, str] = {}
        foils: Dict[str, str] = {}
        for row in result:
            fact = local_name(row.get("factA"))
            fact_type = local_name(row.get("factType"))
            foil = local_name(row.get("foilB"))
            foil_type = local_name(row.get("foilType"))
            if fact and fact_type and fact not in facts:
                facts[fact] = fact_type
            if foil and foil_type and foil not in foils:
                foils[foil] = foil_type

        items: List[ExplanationItem] = []
        for fact, fact_type in sorted(facts.items()):
            items.append(ExplanationItem(
                subject=fact, role="fact", characteristic_type=fact_type,
                detail=f"{fact} ({fact_type}) supports the primary option",
            ))
        for foil, foil_type in sorted(foils.items()):
            items.append(ExplanationItem(
                subject=foil, role="foil", characteristic_type=foil_type,
                detail=f"{foil} ({foil_type}) counts against the alternative",
            ))

        primary = getattr(scenario.question, "primary", "")
        secondary = getattr(scenario.question, "secondary", "")
        return Explanation(
            explanation_type=self.explanation_type,
            question=scenario.question,
            items=items,
            text=render_contrastive(primary, secondary,
                                    [i for i in items if i.role == "fact"],
                                    [i for i in items if i.role == "foil"]),
            query=query_text,
            bindings=[{k: local_name(v) for k, v in row.asdict().items()} for row in result],
        )
