"""Per-type explanation generators (the nine Table I explanation types)."""

from .base import ExplanationGenerator, binding_local_names, local_name
from .case_based import CaseBasedExplanationGenerator
from .contextual import ContextualExplanationGenerator
from .contrastive import ContrastiveExplanationGenerator
from .counterfactual import CounterfactualExplanationGenerator
from .everyday import EverydayExplanationGenerator
from .scientific import ScientificExplanationGenerator
from .simulation import SimulationExplanationGenerator
from .statistical import StatisticalExplanationGenerator
from .trace_based import TraceBasedExplanationGenerator

__all__ = [
    "CaseBasedExplanationGenerator",
    "ContextualExplanationGenerator",
    "ContrastiveExplanationGenerator",
    "CounterfactualExplanationGenerator",
    "EverydayExplanationGenerator",
    "ExplanationGenerator",
    "ScientificExplanationGenerator",
    "SimulationExplanationGenerator",
    "StatisticalExplanationGenerator",
    "TraceBasedExplanationGenerator",
    "binding_local_names",
    "local_name",
]
