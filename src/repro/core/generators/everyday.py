"""Everyday explanations ('What foods go together?').

Deferred to future work in the paper.  Everyday explanations appeal to
common knowledge rather than formal evidence; the closest knowledge-graph
signal is ingredient co-occurrence — foods that frequently appear in the
same recipes 'go together' in everyday cooking.
"""

from __future__ import annotations

from collections import Counter
from typing import List, Optional

from ...foodkg.schema import FoodCatalog
from ..explanation import Explanation, ExplanationItem
from ..scenario import Scenario
from ..templates import render_everyday
from .base import ExplanationGenerator

__all__ = ["EverydayExplanationGenerator"]

#: Pantry staples excluded from pairings (they co-occur with everything).
_STAPLES = {"Salt", "Black Pepper", "Olive Oil", "Butter", "Onion", "Garlic",
            "Vegetable Broth", "Sugar", "Honey"}


class EverydayExplanationGenerator(ExplanationGenerator):
    """Reports the foods that most commonly co-occur with the question's foods."""

    explanation_type = "everyday"

    def __init__(self, catalog: FoodCatalog, max_pairings: int = 5) -> None:
        self._catalog = catalog
        self._max_pairings = max_pairings

    def pairings_for(self, food_name: str) -> List[str]:
        """Foods most frequently co-occurring with ``food_name`` across recipes."""
        counter: Counter = Counter()
        if food_name in self._catalog.recipes:
            anchors = set(self._catalog.recipes[food_name].ingredients)
        else:
            anchors = {food_name}
        for recipe in self._catalog.recipes.values():
            ingredients = set(recipe.ingredients)
            if food_name in self._catalog.recipes and recipe.name == food_name:
                continue
            if anchors & ingredients or food_name in ingredients:
                for other in ingredients - anchors - {food_name}:
                    if other not in _STAPLES:
                        counter[other] += 1
        return [name for name, _ in counter.most_common(self._max_pairings)]

    def generate(self, scenario: Scenario, **kwargs) -> Explanation:
        subject = (getattr(scenario.question, "recipe", "")
                   or getattr(scenario.question, "primary", "")
                   or getattr(scenario.question, "ingredient", ""))
        items: List[ExplanationItem] = []
        if subject:
            for pairing in self.pairings_for(subject):
                items.append(ExplanationItem(
                    subject=pairing,
                    role="pairing",
                    characteristic_type="IngredientCharacteristic",
                    detail=f"{pairing} commonly appears alongside {subject} in recipes",
                ))
        return Explanation(
            explanation_type=self.explanation_type,
            question=scenario.question,
            items=items,
            text=render_everyday(subject or "this food", items),
        )
