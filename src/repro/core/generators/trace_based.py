"""Trace-based explanations ('What steps led to recommendation E?').

Deferred to future work in the paper (their related work covers Dragoni et
al.'s template traces).  The Health Coach substitute emits a
machine-readable :class:`~repro.recommender.trace.RecommendationTrace`;
this generator replays it as an ordered explanation.
"""

from __future__ import annotations

from typing import List

from ..explanation import Explanation, ExplanationItem
from ..scenario import Scenario
from ..templates import render_trace_based
from .base import ExplanationGenerator

__all__ = ["TraceBasedExplanationGenerator"]


class TraceBasedExplanationGenerator(ExplanationGenerator):
    """Turns the recommender's trace into an explanation."""

    explanation_type = "trace_based"

    def generate(self, scenario: Scenario, **kwargs) -> Explanation:
        recommendation = scenario.recommendation
        items: List[ExplanationItem] = []
        recipe = ""
        if recommendation is not None:
            recipe = recommendation.recipe
            for index, step in enumerate(recommendation.trace, start=1):
                items.append(ExplanationItem(
                    subject=step.stage,
                    role="trace_step",
                    characteristic_type="ObjectRecord",
                    detail=f"step {index}: {step.description}",
                    value=str(index),
                ))
            for reason in recommendation.reasons():
                items.append(ExplanationItem(
                    subject=recommendation.recipe,
                    role="scoring_reason",
                    characteristic_type="ObjectRecord",
                    detail=reason,
                ))
        else:
            recipe = getattr(scenario.question, "recipe", "")

        return Explanation(
            explanation_type=self.explanation_type,
            question=scenario.question,
            items=items,
            text=render_trace_based(recipe or "the recommendation",
                                    [i for i in items if i.role == "trace_step"]),
            metadata={"has_recommendation": recommendation is not None},
        )
