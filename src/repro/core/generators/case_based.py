"""Case-based explanations ('What results from other users recommend food A?').

Deferred to future work in the paper.  Our implementation runs the Health
Coach recommender for a population of comparison users (by default the
built-in personas) and reports which comparable users — those sharing a
diet, condition, goal or liked food with the asker — also received the
question's recipe among their top recommendations.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ...foodkg.schema import FoodCatalog
from ...recommender.health_coach import HealthCoach
from ...users.context import SystemContext
from ...users.personas import all_personas
from ...users.profile import UserProfile
from ..explanation import Explanation, ExplanationItem
from ..scenario import Scenario
from ..templates import render_case_based
from .base import ExplanationGenerator

__all__ = ["CaseBasedExplanationGenerator"]

Population = Sequence[Tuple[UserProfile, SystemContext]]


def _similarity(a: UserProfile, b: UserProfile) -> int:
    """Shared likes/diets/conditions/goals between two profiles."""
    return (
        len(set(a.likes) & set(b.likes))
        + len(set(a.diets) & set(b.diets))
        + len(set(a.conditions) & set(b.conditions))
        + len(set(a.goals) & set(b.goals))
    )


class CaseBasedExplanationGenerator(ExplanationGenerator):
    """Finds comparable users whose recommendations include the same recipe."""

    explanation_type = "case_based"

    def __init__(
        self,
        catalog: FoodCatalog,
        population: Optional[Population] = None,
        top_k: int = 5,
    ) -> None:
        self._coach = HealthCoach(catalog)
        self._population = list(population) if population is not None else [
            pair for pair in all_personas().values()
        ]
        self._top_k = top_k

    def generate(self, scenario: Scenario, **kwargs) -> Explanation:
        recipe = (getattr(scenario.question, "recipe", "")
                  or getattr(scenario.question, "primary", ""))
        items: List[ExplanationItem] = []
        if recipe:
            for profile, context in self._population:
                if profile.identifier == scenario.user.identifier:
                    continue
                similarity = _similarity(scenario.user, profile)
                if similarity == 0:
                    continue
                recommendations = self._coach.recommend(profile, context, top_k=self._top_k)
                matching = [rec for rec in recommendations if rec.recipe == recipe]
                if matching:
                    items.append(ExplanationItem(
                        subject=profile.name or profile.identifier,
                        role="case",
                        characteristic_type="UserCharacteristic",
                        detail=(f"{profile.name or profile.identifier} (similarity {similarity}) was "
                                f"also recommended {recipe} at rank {matching[0].rank}"),
                        value=str(matching[0].rank),
                    ))

        return Explanation(
            explanation_type=self.explanation_type,
            question=scenario.question,
            items=items,
            text=render_case_based(recipe or "this recipe", items),
            metadata={"population_size": len(self._population)},
        )
