"""Contextual explanations (competency question 1, Listing 1).

A contextual explanation surfaces the *external* factors — season,
location, budget, meal time — that support recommending the question's
parameter.  The generator runs the Listing 1 SPARQL query over the
scenario's inferred graph and renders the resulting characteristic /
class pairs.
"""

from __future__ import annotations

from typing import Dict, List

from ..explanation import Explanation, ExplanationItem
from ..queries import contextual_query, evaluate_contextual
from ..scenario import Scenario
from ..templates import render_contextual
from .base import ExplanationGenerator, local_name

__all__ = ["ContextualExplanationGenerator"]

#: Ranking used to pick the most specific class per characteristic when the
#: query returns several ancestor classes for the same individual.
_GENERIC_CLASSES = {"Characteristic", "SystemCharacteristic", "UserCharacteristic",
                    "EcosystemCharacteristic", "Parameter"}


class ContextualExplanationGenerator(ExplanationGenerator):
    """Generates contextual explanations for why-questions."""

    explanation_type = "contextual"

    def generate(self, scenario: Scenario, **kwargs) -> Explanation:
        # Evaluate via the prepared-query cache (parse once per process);
        # the substituted text is kept for display / --show-query.
        query_text = contextual_query(scenario.question_iri, match_ecosystem=True)
        result = evaluate_contextual(scenario.inferred, scenario.question_iri,
                                     match_ecosystem=True)

        # Group class bindings per characteristic and keep the most specific.
        classes_by_characteristic: Dict[str, List[str]] = {}
        for row in result:
            characteristic = local_name(row.get("characteristic"))
            cls = local_name(row.get("classes"))
            if not characteristic or not cls:
                continue
            classes_by_characteristic.setdefault(characteristic, [])
            if cls not in classes_by_characteristic[characteristic]:
                classes_by_characteristic[characteristic].append(cls)

        items: List[ExplanationItem] = []
        for characteristic, classes in sorted(classes_by_characteristic.items()):
            specific = [cls for cls in classes if cls not in _GENERIC_CLASSES]
            chosen = specific[0] if specific else classes[0]
            items.append(ExplanationItem(
                subject=characteristic,
                role="context",
                characteristic_type=chosen,
                detail=f"{characteristic} is an external ({chosen}) factor supporting the recommendation",
            ))

        recipe = getattr(scenario.question, "recipe", "") or local_name(
            scenario.parameter_iris[0] if scenario.parameter_iris else ""
        )
        return Explanation(
            explanation_type=self.explanation_type,
            question=scenario.question,
            items=items,
            text=render_contextual(recipe, items),
            query=query_text,
            bindings=[{k: local_name(v) for k, v in row.asdict().items()} for row in result],
        )
