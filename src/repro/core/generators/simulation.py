"""Simulation-based explanations ('What if I ate food A every day?').

Deferred to future work in the paper.  The generator simulates a week of
eating the question's recipe once a day, compares the cumulative nutrition
against simple daily reference values and reports the nutrients that would
be notably over or under target.
"""

from __future__ import annotations

from typing import Dict, List

from ...foodkg.schema import FoodCatalog, NutrientProfile
from ..explanation import Explanation, ExplanationItem
from ..scenario import Scenario
from ..templates import render_simulation
from .base import ExplanationGenerator

__all__ = ["SimulationExplanationGenerator", "DAILY_REFERENCE"]

#: Simplified daily reference intakes (per adult, per day).
DAILY_REFERENCE: Dict[str, float] = {
    "calories": 2000.0,
    "protein": 50.0,
    "carbohydrates": 275.0,
    "fat": 70.0,
    "fiber": 28.0,
    "sodium": 2300.0,
}


class SimulationExplanationGenerator(ExplanationGenerator):
    """Simulates repeated consumption of a recipe and reports nutritional impact."""

    explanation_type = "simulation_based"

    def __init__(self, catalog: FoodCatalog, days: int = 7) -> None:
        self._catalog = catalog
        self._days = days

    def simulate(self, recipe_name: str) -> Dict[str, float]:
        """Fraction of the reference intake one daily serving provides, per nutrient."""
        nutrition = self._catalog.recipe_nutrition(recipe_name)
        servings = max(1, self._catalog.recipes[recipe_name].servings)
        per_serving = nutrition.scaled(1.0 / servings)
        return {
            "calories": per_serving.calories / DAILY_REFERENCE["calories"],
            "protein": per_serving.protein / DAILY_REFERENCE["protein"],
            "carbohydrates": per_serving.carbohydrates / DAILY_REFERENCE["carbohydrates"],
            "fat": per_serving.fat / DAILY_REFERENCE["fat"],
            "fiber": per_serving.fiber / DAILY_REFERENCE["fiber"],
            "sodium": per_serving.sodium / DAILY_REFERENCE["sodium"],
        }

    def generate(self, scenario: Scenario, **kwargs) -> Explanation:
        recipe_name = (getattr(scenario.question, "recipe", "")
                       or getattr(scenario.question, "primary", ""))
        items: List[ExplanationItem] = []
        if recipe_name and recipe_name in self._catalog.recipes:
            fractions = self.simulate(recipe_name)
            ranked = sorted(fractions.items(), key=lambda kv: -kv[1])
            for position, (nutrient, fraction) in enumerate(ranked):
                percent = round(100 * fraction)
                if fraction >= 0.25:
                    detail = (f"one serving a day would supply about {percent}% of the daily "
                              f"{nutrient} reference")
                    role = "high_contribution"
                elif fraction <= 0.05:
                    detail = (f"it would contribute little {nutrient} "
                              f"(about {percent}% of the daily reference per serving)")
                    role = "low_contribution"
                elif position < 3:
                    detail = (f"one serving a day would cover about {percent}% of the daily "
                              f"{nutrient} reference")
                    role = "moderate_contribution"
                else:
                    continue
                items.append(ExplanationItem(
                    subject=nutrient, role=role,
                    characteristic_type="NutrientCharacteristic", detail=detail,
                ))
        return Explanation(
            explanation_type=self.explanation_type,
            question=scenario.question,
            items=items,
            text=render_simulation(recipe_name or "this recipe", items),
            metadata={"days": self._days},
        )
