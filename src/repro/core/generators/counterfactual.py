"""Counterfactual explanations (competency question 3, Listing 3).

A counterfactual explanation answers 'What if ...?' questions by exploring
the consequences of changing the user's profile (e.g. becoming pregnant):
which foods would be forbidden and which would be recommended, including
dishes inherited through their ingredients.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ..explanation import Explanation, ExplanationItem
from ..queries import counterfactual_query, evaluate_counterfactual
from ..scenario import Scenario
from ..templates import render_counterfactual
from .base import ExplanationGenerator, local_name

__all__ = ["CounterfactualExplanationGenerator"]


class CounterfactualExplanationGenerator(ExplanationGenerator):
    """Generates counterfactual explanations for what-if questions."""

    explanation_type = "counterfactual"

    def generate(self, scenario: Scenario, **kwargs) -> Explanation:
        # Evaluate via the prepared-query cache (parse once per process);
        # the substituted text is kept for display / --show-query.
        query_text = counterfactual_query(scenario.question_iri)
        result = evaluate_counterfactual(scenario.inferred, scenario.question_iri)

        forbidden: Dict[str, Optional[str]] = {}
        recommended: Dict[str, Optional[str]] = {}
        for row in result:
            prop = local_name(row.get("property"))
            base_food = local_name(row.get("baseFood"))
            inherited = local_name(row.get("inheritedFood")) or None
            if not base_food:
                continue
            if prop == "forbids":
                forbidden.setdefault(base_food, inherited)
            elif prop == "recommends":
                if base_food not in recommended or (inherited and not recommended[base_food]):
                    recommended[base_food] = inherited

        items: List[ExplanationItem] = []
        for food_name, inherited in sorted(forbidden.items()):
            items.append(ExplanationItem(
                subject=food_name, role="forbidden", value=inherited,
                characteristic_type="FoodCharacteristic",
                detail=f"{food_name} would be forbidden under the hypothetical change",
            ))
        for food_name, inherited in sorted(recommended.items()):
            items.append(ExplanationItem(
                subject=food_name, role="recommended", value=inherited,
                characteristic_type="FoodCharacteristic",
                detail=f"{food_name} would be recommended under the hypothetical change",
            ))

        hypothetical = (getattr(scenario.question, "condition", "")
                        or getattr(scenario.question, "ingredient", ""))
        return Explanation(
            explanation_type=self.explanation_type,
            question=scenario.question,
            items=items,
            text=render_counterfactual(hypothetical,
                                       [i for i in items if i.role == "forbidden"],
                                       [i for i in items if i.role == "recommended"]),
            query=query_text,
            bindings=[{k: local_name(v) for k, v in row.asdict().items()} for row in result],
        )
