"""Statistical explanations ('What evidence from data suggests I follow diet D?').

Deferred to future work in the paper; the design sketch is to aggregate
data from the system's knowledge graph and user population.  This
generator computes aggregate statistics over the food knowledge graph with
SPARQL ``COUNT`` queries (share of catalogue recipes matching the user's
diets, containing the question's key ingredients, fitting the current
season) and reports them as evidence.
"""

from __future__ import annotations

from typing import List, Optional

from ...foodkg.schema import FoodCatalog
from ..explanation import Explanation, ExplanationItem
from ..queries import PREFIXES
from ..scenario import Scenario
from ..templates import humanize, render_statistical
from .base import ExplanationGenerator, local_name

__all__ = ["StatisticalExplanationGenerator"]


class StatisticalExplanationGenerator(ExplanationGenerator):
    """Aggregates knowledge-graph statistics supporting the recommendation."""

    explanation_type = "statistical"

    def __init__(self, catalog: FoodCatalog) -> None:
        self._catalog = catalog

    def _count(self, scenario: Scenario, query: str) -> int:
        result = scenario.query(query)
        rows = list(result)
        if not rows:
            return 0
        value = rows[0].get("n")
        try:
            return int(value.value) if value is not None else 0
        except (TypeError, ValueError):
            return 0

    def generate(self, scenario: Scenario, **kwargs) -> Explanation:
        total_recipes = len(self._catalog.recipes)
        items: List[ExplanationItem] = []

        total_query = f"{PREFIXES}\nSELECT (COUNT(?r) AS ?n) WHERE {{ ?r a food:Recipe . }}"
        kg_total = self._count(scenario, total_query) or total_recipes

        for diet in scenario.user.diets:
            diet_count = sum(1 for r in self._catalog.recipes.values() if diet in r.diets)
            if diet_count:
                share = round(100.0 * diet_count / max(1, total_recipes))
                items.append(ExplanationItem(
                    subject=diet, role="statistic", characteristic_type="DietCharacteristic",
                    detail=(f"{diet_count} of {total_recipes} catalogue recipes ({share}%) are "
                            f"suitable for the {humanize(diet)} diet."),
                ))

        season = scenario.context.season
        seasonal_count = sum(
            1 for r in self._catalog.recipes.values()
            if season in self._catalog.recipe_seasons(r.name)
        )
        if seasonal_count:
            share = round(100.0 * seasonal_count / max(1, total_recipes))
            items.append(ExplanationItem(
                subject=season, role="statistic", characteristic_type="SeasonCharacteristic",
                detail=(f"{seasonal_count} of {total_recipes} recipes ({share}%) use at least one "
                        f"ingredient that is in season in {season}."),
            ))

        recipe_name = getattr(scenario.question, "recipe", "") or getattr(scenario.question, "primary", "")
        if recipe_name and recipe_name in self._catalog.recipes:
            for ingredient in self._catalog.recipes[recipe_name].ingredients[:3]:
                containing = len(self._catalog.recipes_containing(ingredient))
                if containing > 1:
                    items.append(ExplanationItem(
                        subject=ingredient, role="statistic",
                        characteristic_type="IngredientCharacteristic",
                        detail=(f"{ingredient} appears in {containing} of {total_recipes} "
                                f"catalogue recipes."),
                    ))

        subject = recipe_name or (scenario.user.diets[0] if scenario.user.diets else "the recommendation")
        return Explanation(
            explanation_type=self.explanation_type,
            question=scenario.question,
            items=items,
            text=render_statistical(subject, items),
            query=total_query,
            metadata={"kg_recipe_count": kg_total},
        )
