"""Scientific explanations ('What literature recommends Food A?').

The paper defers scientific explanations to future work but sketches the
design: attach guideline/literature evidence that fits the user's
characteristics and the question parameter.  Our knowledge base carries a
``rationale`` with every health rule (the stand-in for published dietary
guidance), so this generator surfaces the rationales whose rule touches
the question's foods or the user's conditions and goals.
"""

from __future__ import annotations

from typing import List, Set

from ...foodkg.schema import FoodCatalog
from ..explanation import Explanation, ExplanationItem
from ..scenario import Scenario
from ..templates import render_scientific
from .base import ExplanationGenerator

__all__ = ["ScientificExplanationGenerator"]


class ScientificExplanationGenerator(ExplanationGenerator):
    """Surfaces guideline rationales relevant to the question."""

    explanation_type = "scientific"

    def __init__(self, catalog: FoodCatalog) -> None:
        self._catalog = catalog

    def _question_foods(self, scenario: Scenario) -> Set[str]:
        foods: Set[str] = set()
        question = scenario.question
        for attribute in ("recipe", "primary", "secondary", "ingredient"):
            name = getattr(question, attribute, "")
            if name and name in self._catalog.recipes:
                foods.add(name)
                foods.update(self._catalog.recipes[name].ingredients)
            elif name and name in self._catalog.ingredients:
                foods.add(name)
        return foods

    def generate(self, scenario: Scenario, **kwargs) -> Explanation:
        foods = self._question_foods(scenario)
        subjects = set(scenario.user.conditions) | set(scenario.user.goals)
        condition = getattr(scenario.question, "condition", "")
        if condition:
            subjects.add(condition)

        items: List[ExplanationItem] = []
        seen_rationales: Set[str] = set()
        for rule in self._catalog.condition_rules:
            relevant_subject = rule.subject in subjects
            touched = foods & (set(rule.forbids) | set(rule.recommends))
            if not (relevant_subject or touched):
                continue
            if not rule.rationale or rule.rationale in seen_rationales:
                continue
            seen_rationales.add(rule.rationale)
            items.append(ExplanationItem(
                subject=rule.subject,
                role="evidence",
                characteristic_type="KnowledgeRecord",
                detail=rule.rationale,
            ))

        subject = (getattr(scenario.question, "recipe", "")
                   or getattr(scenario.question, "primary", "")
                   or condition or "the recommendation")
        return Explanation(
            explanation_type=self.explanation_type,
            question=scenario.question,
            items=items,
            text=render_scientific(subject, items),
            metadata={"foods_considered": sorted(foods)},
        )
