"""Base class shared by all explanation generators."""

from __future__ import annotations

from typing import Dict, List, Optional

from ...rdf.terms import IRI, Literal
from ..explanation import Explanation
from ..scenario import Scenario

__all__ = ["ExplanationGenerator", "local_name", "binding_local_names"]


def local_name(term) -> str:
    """The readable local name of an IRI (or the lexical form of a literal)."""
    if isinstance(term, IRI):
        return term.local_name()
    if isinstance(term, Literal):
        return term.lexical
    return str(term) if term is not None else ""


def binding_local_names(binding: Dict) -> Dict[str, str]:
    """Convert a SPARQL solution dict into readable local names."""
    return {key: local_name(value) for key, value in binding.items()}


class ExplanationGenerator:
    """Base class: subclasses set ``explanation_type`` and implement ``generate``."""

    #: Key into :data:`repro.ontology.eo.EXPLANATION_TYPES`.
    explanation_type: str = ""

    def generate(self, scenario: Scenario, **kwargs) -> Explanation:
        """Produce an :class:`Explanation` for the scenario's question."""
        raise NotImplementedError

    def _empty(self, scenario: Scenario, text: str = "", query: Optional[str] = None) -> Explanation:
        return Explanation(
            explanation_type=self.explanation_type,
            question=scenario.question,
            items=[],
            text=text,
            query=query,
        )
