"""Cost-based query planning for the SPARQL evaluator.

The naive evaluator (:class:`~repro.sparql.evaluator.QueryEvaluator`)
executes basic graph patterns strictly left to right with nested-loop
joins, so a badly-ordered query — an unbound-predicate or var-var triple
first — explodes its intermediate results even though the
:class:`~repro.rdf.graph.Graph` keeps SPO/POS/OSP indexes that could
answer the selective patterns first.  This module rewrites the parsed
algebra into an executable plan before evaluation:

* **BGP merging + join reordering** — adjacent basic graph patterns in a
  group (including ones separated only by ``FILTER``, which the evaluator
  hoists to the end of the group anyway) are merged into one join space,
  and at evaluation time triple patterns are ordered greedily by estimated
  growth factor.  The estimates come from :meth:`Graph.cardinality`, the
  per-predicate counters and the index sizes — all O(1) reads.
* **Filter pushdown** — a ``FILTER`` runs as soon as every variable it
  mentions is certainly bound (conservatively including variables inside
  ``EXISTS`` patterns), instead of after the whole group.
* **Hash-join probe reuse** — while joining a triple pattern into the
  running solutions, probes are keyed by their substituted pattern; the
  distinct probe keys form the build side of a hash join, so repeated
  bindings hit the table instead of re-probing the graph.
* **Chained bindings** — intermediate solutions inside a BGP are immutable
  linked cells over the incoming mapping, killing the per-row
  ``dict(solution)`` copy of the naive ``_merge``; a plain dict is only
  materialised once per surviving BGP row.

Reordering only happens *inside* one merged BGP and filters only move
*earlier* when provably equivalent, so planned evaluation is
row-equivalent to the naive path (``PreparedQuery.evaluate_naive`` /
``evaluate_query``), which the differential suite checks on randomized
graphs and queries.  Plans are compiled once per
:class:`~repro.sparql.PreparedQuery` and cached alongside it, so the
service layer's prepared-query cache also caches plans;
:func:`planner_stats` exposes the process-wide counters (plan cache hits,
reorderings applied, filters pushed, estimated vs actual cardinalities).
"""

from __future__ import annotations

import threading
from collections.abc import Mapping as MappingABC
from dataclasses import dataclass, replace
from typing import Any, Dict, FrozenSet, List, Mapping, Optional, Sequence, Set, Tuple

from ..rdf.dictionary import KIND_LITERAL
from ..rdf.terms import BNode, IRI, Variable
from .algebra import (
    AggregateExpr,
    AskQuery,
    BGP,
    BindPattern,
    BinaryExpr,
    ConstructQuery,
    ExistsExpr,
    Expression,
    FilterPattern,
    FunctionExpr,
    GroupPattern,
    InExpr,
    MinusPattern,
    OptionalPattern,
    PathExpr,
    Pattern,
    Query,
    SelectQuery,
    TermExpr,
    TriplePattern,
    UnaryExpr,
    UnionPattern,
    ValuesPattern,
    VariableExpr,
)
from .evaluator import QueryEvaluator, Solution
from .functions import ExpressionError, effective_boolean_value, evaluate_expression
from .paths import evaluate_path

__all__ = [
    "CompiledPlan",
    "PlanEvaluator",
    "PlannedBGP",
    "PlannedGroup",
    "compile_plan",
    "expression_variables",
    "pattern_variables",
    "planner_stats",
    "reset_planner_stats",
]

#: Cost multiplier for a pattern that shares no variable with the bound set:
#: joining it multiplies the whole intermediate (a cartesian product).
_CARTESIAN_PENALTY = 1000.0
#: Property paths can expand transitively beyond their seed cardinality.
_PATH_PENALTY = 2.0


# ---------------------------------------------------------------------------
# Planner statistics
# ---------------------------------------------------------------------------
class PlannerStats:
    """Thread-safe process-wide counters describing planner activity.

    All increments go through the instance lock (``record_compile`` /
    ``flush``), so concurrent query threads never lose an update.
    *Process-wide* means exactly that: reasoner pool workers
    (:mod:`repro.owl.parallel`) have their own copy of these counters in
    their forked address space — whatever they count never appears here.
    That is by design: workers return everything the coordinator needs
    (candidate triples, watermarks) in their task results, and the
    coordinator folds those into its own process's state; no shared-memory
    counters exist to tear or race across processes.
    """

    _FIELDS = (
        "plans_compiled",
        "plan_cache_hits",
        "reorderings_applied",
        "filters_pushed",
        "bgps_evaluated",
        "encoded_bgps",
        "hash_join_probes",
        "hash_join_reuses",
        "estimated_rows",
        "actual_rows",
    )

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, int] = {field: 0 for field in self._FIELDS}

    def record_compile(self) -> None:
        with self._lock:
            self._counters["plans_compiled"] += 1

    def flush(self, pending: Dict[str, int]) -> None:
        """Fold a batch of locally-accumulated counters in (one lock trip)."""
        with self._lock:
            counters = self._counters
            for field, value in pending.items():
                if value:
                    counters[field] += value

    def snapshot(self) -> Dict[str, int]:
        with self._lock:
            return dict(self._counters)

    def reset(self) -> None:
        with self._lock:
            for field in self._FIELDS:
                self._counters[field] = 0


_STATS = PlannerStats()


def planner_stats() -> Dict[str, int]:
    """The process-wide planner counters (plan cache hits, reorders, ...)."""
    return _STATS.snapshot()


def reset_planner_stats() -> None:
    """Zero the process-wide planner counters (test isolation helper)."""
    _STATS.reset()


# ---------------------------------------------------------------------------
# Variable analysis
# ---------------------------------------------------------------------------
def expression_variables(expression: Expression) -> FrozenSet[Variable]:
    """Every variable an expression's value can depend on.

    Variables inside ``EXISTS`` / ``NOT EXISTS`` patterns are included:
    the current solution is substituted into the pattern, so a variable
    bound later in the group would change the result of an early
    evaluation.  The pushdown rule only moves a filter once this whole
    set is certainly bound.
    """
    found: Set[Variable] = set()
    _collect_expression(expression, found)
    return frozenset(found)


def _collect_expression(expression: Expression, found: Set[Variable]) -> None:
    if isinstance(expression, VariableExpr):
        found.add(expression.variable)
    elif isinstance(expression, BinaryExpr):
        _collect_expression(expression.left, found)
        _collect_expression(expression.right, found)
    elif isinstance(expression, UnaryExpr):
        _collect_expression(expression.operand, found)
    elif isinstance(expression, FunctionExpr):
        for arg in expression.args:
            _collect_expression(arg, found)
    elif isinstance(expression, InExpr):
        _collect_expression(expression.value, found)
        for option in expression.options:
            _collect_expression(option, found)
    elif isinstance(expression, AggregateExpr):
        if expression.argument is not None:
            _collect_expression(expression.argument, found)
    elif isinstance(expression, ExistsExpr):
        found.update(pattern_variables(expression.pattern))


def _contains_exists(expression: Expression) -> bool:
    if isinstance(expression, ExistsExpr):
        return True
    if isinstance(expression, BinaryExpr):
        return _contains_exists(expression.left) or _contains_exists(expression.right)
    if isinstance(expression, UnaryExpr):
        return _contains_exists(expression.operand)
    if isinstance(expression, FunctionExpr):
        return any(_contains_exists(arg) for arg in expression.args)
    if isinstance(expression, InExpr):
        return _contains_exists(expression.value) or any(
            _contains_exists(option) for option in expression.options
        )
    if isinstance(expression, AggregateExpr):
        return expression.argument is not None and _contains_exists(expression.argument)
    return False


def _filter_info(expression: Expression) -> _FilterInfo:
    variables = expression_variables(expression)
    return _FilterInfo(
        expression=expression,
        vars=variables,
        has_exists=_contains_exists(expression),
        key_vars=tuple(sorted(variables, key=str)),
    )


def pattern_variables(pattern: Pattern) -> FrozenSet[Variable]:
    """Every variable mentioned anywhere inside ``pattern``."""
    found: Set[Variable] = set()
    _collect_pattern(pattern, found)
    return frozenset(found)


def _collect_pattern(pattern: Pattern, found: Set[Variable]) -> None:
    if isinstance(pattern, BGP):
        for triple in pattern.triples:
            found.update(triple.variables())
    elif isinstance(pattern, PlannedBGP):
        for info in pattern.triples:
            found.update(info.vars)
    elif isinstance(pattern, GroupPattern):
        for element in pattern.patterns:
            _collect_pattern(element, found)
    elif isinstance(pattern, PlannedGroup):
        for element, _ in pattern.elements:
            _collect_pattern(element, found)
        for info in pattern.filters:
            found.update(info.vars)
    elif isinstance(pattern, FilterPattern):
        _collect_expression(pattern.expression, found)
    elif isinstance(pattern, (OptionalPattern, MinusPattern)):
        _collect_pattern(pattern.pattern, found)
    elif isinstance(pattern, UnionPattern):
        for alternative in pattern.alternatives:
            _collect_pattern(alternative, found)
    elif isinstance(pattern, BindPattern):
        _collect_expression(pattern.expression, found)
        found.add(pattern.variable)
    elif isinstance(pattern, ValuesPattern):
        found.update(pattern.variables)


# ---------------------------------------------------------------------------
# Plan nodes
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class _TripleInfo:
    """One triple pattern with its variable layout precomputed."""

    pattern: TriplePattern
    index: int  # textual position inside the merged BGP
    subject_var: Optional[Variable]
    predicate_var: Optional[Variable]
    object_var: Optional[Variable]
    is_path: bool
    vars: FrozenSet[Variable]
    has_repeated_var: bool
    #: (slot, variable) pairs for the variable positions (slot 0/1/2 =
    #: subject/predicate/object) — the only probe-key components that can
    #: vary between solutions.
    var_slots: Tuple[Tuple[int, Variable], ...]


@dataclass(frozen=True)
class _FilterInfo:
    """A group filter with its (conservative) variable dependency set.

    ``has_exists`` filters are never pushed ahead of their naive position:
    an EXISTS costs a sub-query per row, and running it on intermediate
    rows that a later join would have pruned can easily cost more than the
    pushdown saves.  They are memoised per distinct variable projection
    instead (:meth:`PlanEvaluator._apply_filter_info`).
    """

    expression: Expression
    vars: FrozenSet[Variable]
    has_exists: bool
    key_vars: Tuple[Variable, ...]


class PlannedBGP(Pattern):
    """A merged basic graph pattern whose join order is chosen at runtime.

    A BGP containing a triple pattern that repeats a variable across
    positions (``?x :p ?x``) is pinned to textual order: the naive
    evaluator resolves repeated variables through dictionary overwrites,
    which is not join-commutative, and the planner must stay
    row-equivalent to it.  Such BGPs still get probe reuse, chained
    bindings and filter pushdown — just not reordering.
    """

    __slots__ = ("triples", "reorderable", "all_vars", "order_cache")

    def __init__(self, triples: Sequence[_TripleInfo]) -> None:
        self.triples: Tuple[_TripleInfo, ...] = tuple(triples)
        self.reorderable = not any(info.has_repeated_var for info in self.triples)
        self.all_vars: FrozenSet[Variable] = (
            frozenset().union(*(info.vars for info in self.triples))
            if self.triples else frozenset()
        )
        # Chosen join orders, shared across evaluations of the compiled
        # plan: keyed by (bound variables, graph fingerprint) so a mutated
        # or different graph re-plans.  Bounded; cleared when it overflows.
        self.order_cache: Dict[Tuple, Tuple[Tuple[_TripleInfo, ...], float]] = {}


class PlannedGroup(Pattern):
    """A group with merged BGPs, separated filters and certainty metadata.

    ``elements`` pairs each non-filter child with the set of variables it
    certainly binds in every produced solution; ``filters`` hold the
    group's constraints, applied as early as their variables allow.
    """

    __slots__ = ("elements", "filters")

    def __init__(
        self,
        elements: Sequence[Tuple[Pattern, FrozenSet[Variable]]],
        filters: Sequence[_FilterInfo],
    ) -> None:
        self.elements: Tuple[Tuple[Pattern, FrozenSet[Variable]], ...] = tuple(elements)
        self.filters: Tuple[_FilterInfo, ...] = tuple(filters)


def _triple_info(triple: TriplePattern, index: int) -> _TripleInfo:
    is_path = isinstance(triple.predicate, PathExpr)
    subject_var = triple.subject if isinstance(triple.subject, Variable) else None
    predicate_var = (
        triple.predicate
        if not is_path and isinstance(triple.predicate, Variable)
        else None
    )
    object_var = triple.object if isinstance(triple.object, Variable) else None
    position_vars = [v for v in (subject_var, predicate_var, object_var) if v is not None]
    var_slots = tuple(
        (slot, var)
        for slot, var in enumerate((subject_var, predicate_var, object_var))
        if var is not None
    )
    return _TripleInfo(
        pattern=triple,
        index=index,
        subject_var=subject_var,
        predicate_var=predicate_var,
        object_var=object_var,
        is_path=is_path,
        vars=frozenset(triple.variables()),
        has_repeated_var=len(position_vars) != len(set(position_vars)),
        var_slots=var_slots,
    )


def _compile_pattern(pattern: Pattern) -> Tuple[Pattern, FrozenSet[Variable]]:
    """Compile ``pattern``; returns the plan node and its certainly-bound vars.

    "Certainly bound" means bound in *every* solution the pattern can
    produce: BGP variables qualify, OPTIONAL / MINUS / BIND contributions
    do not (OPTIONAL may leave them unbound, BIND unbinds on expression
    error), UNION contributes the intersection of its alternatives and
    VALUES only columns without UNDEF cells.
    """
    if isinstance(pattern, GroupPattern):
        elements: List[Tuple[Pattern, FrozenSet[Variable]]] = []
        filters: List[_FilterInfo] = []
        pending: List[_TripleInfo] = []

        def flush() -> None:
            if pending:
                bgp = PlannedBGP(pending)
                certain = frozenset().union(*(info.vars for info in pending))
                elements.append((bgp, certain))
                pending.clear()

        for element in pattern.patterns:
            if isinstance(element, FilterPattern):
                # The naive evaluator hoists group filters to the end of the
                # group, so a filter never splits the join space.
                filters.append(_filter_info(element.expression))
            elif isinstance(element, BGP):
                for triple in element.triples:
                    pending.append(_triple_info(triple, len(pending)))
            else:
                flush()
                elements.append(_compile_pattern(element))
        flush()
        certain_all = frozenset().union(*(c for _, c in elements)) if elements else frozenset()
        return PlannedGroup(elements, filters), certain_all
    if isinstance(pattern, BGP):
        infos = [_triple_info(triple, i) for i, triple in enumerate(pattern.triples)]
        certain = (
            frozenset().union(*(info.vars for info in infos)) if infos else frozenset()
        )
        return PlannedBGP(infos), certain
    if isinstance(pattern, OptionalPattern):
        inner, _ = _compile_pattern(pattern.pattern)
        return OptionalPattern(inner), frozenset()
    if isinstance(pattern, MinusPattern):
        inner, _ = _compile_pattern(pattern.pattern)
        return MinusPattern(inner), frozenset()
    if isinstance(pattern, UnionPattern):
        compiled = [_compile_pattern(alternative) for alternative in pattern.alternatives]
        certain: FrozenSet[Variable] = frozenset()
        if compiled:
            certain = compiled[0][1]
            for _, alt_certain in compiled[1:]:
                certain &= alt_certain
        return UnionPattern([node for node, _ in compiled]), certain
    if isinstance(pattern, ValuesPattern):
        certain = frozenset(
            var
            for column, var in enumerate(pattern.variables)
            if pattern.rows and all(row[column] is not None for row in pattern.rows)
        )
        return pattern, certain
    # BindPattern (error leaves the variable unbound) and anything unknown.
    return pattern, frozenset()


# ---------------------------------------------------------------------------
# Compiled plans
# ---------------------------------------------------------------------------
class CompiledPlan:
    """The planned, executable form of one parsed query."""

    __slots__ = ("algebra",)

    def __init__(self, algebra: Query) -> None:
        self.algebra = algebra


def compile_plan(query: Query) -> CompiledPlan:
    """Rewrite ``query``'s WHERE tree into plan nodes (query object untouched)."""
    if isinstance(query, SelectQuery):
        where, _ = _compile_pattern(query.where)
        planned: Query = replace(query, where=where)
    elif isinstance(query, AskQuery):
        where, _ = _compile_pattern(query.where)
        planned = AskQuery(where=where)
    elif isinstance(query, ConstructQuery):
        where, _ = _compile_pattern(query.where)
        planned = replace(query, where=where)
    else:
        planned = query
    _STATS.record_compile()
    return CompiledPlan(planned)


# ---------------------------------------------------------------------------
# Chained solutions
# ---------------------------------------------------------------------------
_MISSING = object()


class _DecodingView(MappingABC):
    """A read-only term-level view over a chain with ID-valued cells.

    Filter expressions observe terms; instead of materialising and
    decoding every chain before a pushed-down filter runs, the filter
    evaluates against this view, which decodes the ID-bound variables on
    access.  Surviving chains stay chains (and stay encoded), so the
    remaining joins keep running on IDs.
    """

    __slots__ = ("_chain", "_id_vars", "_terms")

    def __init__(self, chain: Any, id_vars: Set[Variable], terms: List[Any]) -> None:
        self._chain = chain
        self._id_vars = id_vars
        self._terms = terms

    def get(self, key: Any, default: Any = None) -> Any:
        value = self._chain.get(key, default)
        if type(value) is int and key in self._id_vars:
            return self._terms[value]
        return value

    def __getitem__(self, key: Any) -> Any:
        value = self.get(key, _MISSING)
        if value is _MISSING:
            raise KeyError(key)
        return value

    def __contains__(self, key: Any) -> bool:
        return key in self._chain

    def __iter__(self):
        return iter(self._chain)

    def __len__(self) -> int:
        return len(self._chain)


class _ChainSolution(MappingABC):
    """An immutable one-binding extension of a parent solution mapping.

    Joining a triple pattern extends solutions by chaining cells instead of
    copying dicts; the chain bottoms out at the incoming (dict) solution.
    Variables are never rebound along a chain (bound variables are
    substituted into the probe instead), so lookups can stop at the first
    cell naming the variable.
    """

    __slots__ = ("_parent", "_var", "_value")

    def __init__(self, parent: Any, var: Variable, value: Any) -> None:
        self._parent = parent
        self._var = var
        self._value = value

    def get(self, key: Any, default: Any = None) -> Any:
        node = self
        while type(node) is _ChainSolution:
            if node._var == key:
                return node._value
            node = node._parent
        return node.get(key, default)

    def __getitem__(self, key: Any) -> Any:
        value = self.get(key, _MISSING)
        if value is _MISSING:
            raise KeyError(key)
        return value

    def __contains__(self, key: Any) -> bool:
        return self.get(key, _MISSING) is not _MISSING

    def __iter__(self):
        node = self
        while type(node) is _ChainSolution:
            yield node._var
            node = node._parent
        yield from node

    def __len__(self) -> int:
        length = 0
        node = self
        while type(node) is _ChainSolution:
            length += 1
            node = node._parent
        return length + len(node)

    def materialize(self) -> Solution:
        """Flatten the chain into a plain dict (insertion order preserved)."""
        cells: List[Tuple[Variable, Any]] = []
        node = self
        while type(node) is _ChainSolution:
            cells.append((node._var, node._value))
            node = node._parent
        out = dict(node)
        for var, value in reversed(cells):
            out[var] = value
        return out


# ---------------------------------------------------------------------------
# Plan evaluation
# ---------------------------------------------------------------------------
class PlanEvaluator(QueryEvaluator):
    """A :class:`QueryEvaluator` that understands plan nodes.

    Raw algebra nodes (e.g. the pattern inside an ``EXISTS`` expression)
    still evaluate through the inherited naive paths, so a plan can mix
    planned and unplanned subtrees freely.

    The evaluator instance lives for one query evaluation and carries two
    memo tables across repeated sub-evaluations (OPTIONAL / UNION / MINUS
    re-enter their inner pattern once per outer solution): the chosen join
    order per (BGP, bound-variable set), and EXISTS filter verdicts per
    distinct variable projection.  Both are safe because the graph is
    read-only for the duration of one evaluation.
    """

    def __init__(self, graph) -> None:
        super().__init__(graph)
        self._order_cache: Dict[Tuple[int, FrozenSet[Variable]], Tuple[Tuple[_TripleInfo, ...], float]] = {}
        self._exists_cache: Dict[int, Dict[Tuple, bool]] = {}
        # Counters are accumulated locally and flushed to the process-wide
        # stats in one lock trip per evaluation (a nested OPTIONAL can run
        # thousands of tiny BGP joins per query).
        self._pending_stats: Dict[str, int] = {}
        # The encoded fast path binds and joins on dictionary IDs when the
        # graph is a dictionary-encoded store (a ReadOnlyGraphUnion is not:
        # its members may belong to different families).
        self._dictionary = getattr(graph, "dictionary", None) if hasattr(
            graph, "triples_ids") else None
        # Compiled ID-space filter predicates, memoised per (expression,
        # relevant id-var membership): OPTIONAL / UNION / MINUS re-enter
        # their inner BGPs once per outer solution and would otherwise
        # recompile the same predicate every time.
        self._id_filter_cache: Dict[Tuple, Any] = {}

    def evaluate(self, query, init_bindings=None):
        try:
            return super().evaluate(query, init_bindings)
        finally:
            if self._pending_stats:
                _STATS.flush(self._pending_stats)
                self._pending_stats = {}

    def _bump(self, field: str, amount: int = 1) -> None:
        if amount:
            self._pending_stats[field] = self._pending_stats.get(field, 0) + amount

    def note_plan_hit(self) -> None:
        """Count a compiled-plan reuse in this evaluation's batched flush."""
        self._bump("plan_cache_hits")

    def evaluate_pattern(self, pattern: Pattern, solutions: List[Solution]) -> List[Solution]:
        if isinstance(pattern, PlannedGroup):
            return self._evaluate_planned_group(pattern, solutions)
        if isinstance(pattern, PlannedBGP):
            results, _ = self._evaluate_planned_bgp(
                pattern, solutions, self._bound_in_all(solutions), ()
            )
            return results
        return super().evaluate_pattern(pattern, solutions)

    def _evaluate_optional(self, pattern: OptionalPattern, solutions: List[Solution]) -> List[Solution]:
        """OPTIONAL as one batched left join instead of a per-row loop.

        When every incoming solution binds the same variable set, the inner
        pattern is evaluated once over the whole batch (so its joins get
        the probe table and one ordering decision) and the unmatched rows
        are recovered afterwards: an extension preserves its source row's
        bindings, so projecting an output onto the input domain identifies
        the input it came from.  Mixed-domain batches (possible after a
        previous OPTIONAL) fall back to the naive per-row loop.
        """
        if len(solutions) > 1:
            inner = pattern.pattern
            if (
                isinstance(inner, PlannedGroup)
                and len(inner.elements) == 1
                and not inner.filters
                and isinstance(inner.elements[0][0], PlannedBGP)
            ):
                # Joins extend a chain without replacing its root, so each
                # output's root object *is* the input row it came from.
                bgp = inner.elements[0][0]
                chains, _, id_vars = self._join_bgp(
                    bgp, solutions, self._bound_in_all(solutions), ()
                )
                matched: Set[int] = set()
                results: List[Solution] = []
                for chain in chains:
                    node = chain
                    while type(node) is _ChainSolution:
                        node = node._parent
                    matched.add(id(node))
                    if id_vars:
                        results.append(self._decode_chain(chain, id_vars))
                    else:
                        results.append(
                            chain.materialize() if type(chain) is _ChainSolution else chain
                        )
                for solution in solutions:
                    if id(solution) not in matched:
                        results.append(solution)
                return results
            domain = frozenset(solutions[0].keys())
            if all(frozenset(s.keys()) == domain for s in solutions[1:]):
                extended = self.evaluate_pattern(pattern.pattern, list(solutions))
                key_vars = tuple(sorted(domain, key=str))
                matched_keys = {tuple(row.get(v) for v in key_vars) for row in extended}
                results = list(extended)
                for solution in solutions:
                    if tuple(solution.get(v) for v in key_vars) not in matched_keys:
                        results.append(solution)
                return results
        return super()._evaluate_optional(pattern, solutions)

    # -- group orchestration -------------------------------------------
    @staticmethod
    def _bound_in_all(solutions: Sequence[Mapping]) -> Set[Variable]:
        """Variables bound in every incoming solution (safe pushdown floor)."""
        if not solutions:
            return set()
        iterator = iter(solutions)
        common = set(next(iterator).keys())
        for solution in iterator:
            if not common:
                break
            common.intersection_update(solution.keys())
        return common

    def _apply_filter_info(self, info: _FilterInfo, solutions: List[Solution]) -> List[Solution]:
        """Apply one filter; EXISTS verdicts are memoised per projection.

        An expression's outcome depends only on the bindings of its
        variables (``info.key_vars``, conservatively including variables
        inside EXISTS patterns), so rows sharing that projection share the
        verdict — one sub-query answers all of them.
        """
        if not info.has_exists or not info.key_vars:
            return self._apply_filter(info.expression, solutions)
        cache = self._exists_cache.setdefault(id(info), {})
        kept: List[Solution] = []
        for solution in solutions:
            key = tuple(solution.get(var) for var in info.key_vars)
            verdict = cache.get(key)
            if verdict is None:
                try:
                    value = evaluate_expression(info.expression, solution, self._exists)
                    verdict = effective_boolean_value(value)
                except ExpressionError:
                    verdict = False
                cache[key] = verdict
            if verdict:
                kept.append(solution)
        return kept

    def _apply_ready_filters(
        self,
        pending: List[_FilterInfo],
        bound: Set[Variable],
        solutions: List[Solution],
    ) -> Tuple[List[Solution], List[_FilterInfo], int]:
        """Apply every pending pushable filter whose variables are all bound."""
        still: List[_FilterInfo] = []
        applied = 0
        for info in pending:
            if not info.has_exists and info.vars <= bound:
                solutions = self._apply_filter(info.expression, solutions)
                applied += 1
            else:
                still.append(info)
        return solutions, still, applied

    def _evaluate_planned_group(
        self, group: PlannedGroup, solutions: List[Solution]
    ) -> List[Solution]:
        if not solutions:
            return []
        bound = self._bound_in_all(solutions)
        pending = list(group.filters)
        pushed = 0
        current = solutions
        if pending:
            current, pending, count = self._apply_ready_filters(pending, bound, current)
            pushed += count
        for element, certain in group.elements:
            if not current:
                self._bump("filters_pushed", pushed)
                return []
            if isinstance(element, PlannedBGP):
                current, applied = self._evaluate_planned_bgp(
                    element, current, bound, pending
                )
                if applied:
                    applied_ids = {id(info) for info in applied}
                    pending = [info for info in pending if id(info) not in applied_ids]
                    pushed += len(applied)
            else:
                current = self.evaluate_pattern(element, current)
            bound |= certain
            if pending and current:
                current, pending, count = self._apply_ready_filters(pending, bound, current)
                pushed += count
        # Whatever could not (or should not) be pushed runs here, at the end
        # of the group — exactly where the naive evaluator runs every filter.
        for info in pending:
            current = self._apply_filter_info(info, current)
        self._bump("filters_pushed", pushed)
        return current

    # -- BGP join with runtime ordering --------------------------------
    def _evaluate_planned_bgp(
        self,
        bgp: PlannedBGP,
        solutions: List[Solution],
        bound: Set[Variable],
        pending: Sequence[_FilterInfo],
    ) -> Tuple[List[Solution], List[_FilterInfo]]:
        chains, applied, id_vars = self._join_bgp(bgp, solutions, bound, pending)
        if id_vars:
            results = [self._decode_chain(chain, id_vars) for chain in chains]
        else:
            results = [
                chain.materialize() if type(chain) is _ChainSolution else chain
                for chain in chains
            ]
        return results, applied

    def _decode_chain(self, chain: Any, id_vars: Set[Variable]) -> Solution:
        """Materialise a chain, decoding its ID-valued cells in the same pass.

        Only variables bound by the encoded join path (``id_vars``) can
        hold IDs; everything else is already a term.
        """
        terms = self._dictionary.terms
        cells: List[Tuple[Variable, Any]] = []
        node = chain
        while type(node) is _ChainSolution:
            cells.append((node._var, node._value))
            node = node._parent
        out = dict(node)
        for var, value in reversed(cells):
            out[var] = terms[value] if type(value) is int and var in id_vars else value
        return out

    def _join_bgp(
        self,
        bgp: PlannedBGP,
        solutions: List[Solution],
        bound: Set[Variable],
        pending: Sequence[_FilterInfo],
    ) -> Tuple[List[Any], List[_FilterInfo], Set[Variable]]:
        """Join every triple of ``bgp`` into ``solutions``, returning chains.

        The chain layer is exposed so callers that can exploit it (the
        batched OPTIONAL left join) avoid the per-row materialisation.

        On a dictionary-encoded graph the joins run in ID space: pattern
        constants are encoded once, probe keys and chain cells hold
        integer IDs, and decoding is deferred to the points where terms
        become observable — chain materialisation and filter evaluation.
        The returned ``id_vars`` names the variables whose chain cells
        hold IDs (empty on the term path), so callers know what to decode.
        """
        order, growth = self._bgp_order(bgp, frozenset(bound))
        bound = set(bound)
        chains: List[Any] = list(solutions)
        pending_local = list(pending)
        applied: List[_FilterInfo] = []
        estimated = float(len(chains)) * growth
        probes = 0
        probe_hits = 0
        # The encoded path needs a uniform solution domain so that term-vs-ID
        # provenance is a per-variable fact, not a per-row one; property
        # paths evaluate through the term-level path machinery and keep the
        # whole BGP on the term path.
        id_vars: Set[Variable] = set()
        use_encoded = (
            self._dictionary is not None
            and chains
            and not any(info.is_path for info in order)
        )
        if use_encoded and len(chains) > 1:
            common = self._bound_in_all(chains)
            use_encoded = all(len(solution) == len(common) for solution in chains)
        if use_encoded:
            self._bump("encoded_bgps")
        for info in order:
            if not chains:
                break
            if use_encoded:
                chains, p_count, h_count, new_vars = self._join_triple_ids(
                    info, chains, id_vars)
                id_vars |= new_vars
            else:
                chains, p_count, h_count = self._join_triple(info, chains)
            probes += p_count
            probe_hits += h_count
            bound |= info.vars
            if pending_local and chains:
                still: List[_FilterInfo] = []
                for finfo in pending_local:
                    if not finfo.has_exists and finfo.vars <= bound:
                        if id_vars:
                            # Filters observe terms: evaluate each chain
                            # through a decoding view so survivors stay
                            # encoded chains for the remaining joins.
                            chains = self._filter_chains_encoded(
                                finfo.expression, chains, id_vars)
                        else:
                            chains = self._apply_filter(finfo.expression, chains)
                        applied.append(finfo)
                    else:
                        still.append(finfo)
                pending_local = still
        self._bump("bgps_evaluated")
        if [info.index for info in order] != sorted(info.index for info in order):
            self._bump("reorderings_applied")
        self._bump("hash_join_probes", probes)
        self._bump("hash_join_reuses", probe_hits)
        self._bump("estimated_rows", min(int(estimated + 0.5), 10 ** 15))
        self._bump("actual_rows", len(chains))
        return chains, applied, id_vars

    def _bgp_order(
        self, bgp: PlannedBGP, bound: FrozenSet[Variable]
    ) -> Tuple[Tuple[_TripleInfo, ...], float]:
        """The greedy join order (and growth estimate) for one bound set.

        The selection depends only on *which* variables are bound — not on
        their per-row values — so it is computed once per (BGP, bound set)
        and reused; OPTIONAL / UNION / MINUS re-enter their inner patterns
        once per outer solution and would otherwise re-plan every time.
        """
        bound = bound & bgp.all_vars
        key = (id(bgp), bound)
        cached = self._order_cache.get(key)
        if cached is not None:
            return cached
        graph = self.graph
        # A second, plan-lifetime memo shared across evaluations: the
        # selection depends only on the bound set and the graph's content,
        # so it is keyed by the O(1) fingerprint when the graph has one.
        fingerprint = getattr(graph, "fingerprint", None)
        shared_key = (bound, fingerprint()) if fingerprint is not None else None
        if shared_key is not None:
            cached = bgp.order_cache.get(shared_key)
            if cached is not None:
                self._order_cache[key] = cached
                return cached
        can_estimate = hasattr(graph, "cardinality") and hasattr(graph, "index_stats")
        if not can_estimate:
            result: Tuple[Tuple[_TripleInfo, ...], float] = (bgp.triples, 1.0)
            self._order_cache[key] = result
            return result
        index_stats = graph.index_stats()
        remaining = list(bgp.triples)
        working = set(bound)
        order: List[_TripleInfo] = []
        growth = 1.0
        while remaining:
            if bgp.reorderable and len(remaining) > 1:
                info = self._select_triple(remaining, working, graph, index_stats)
            else:
                info = remaining[0]
            remaining.remove(info)
            order.append(info)
            growth *= max(self._estimate_triple(info, working, graph, index_stats), 1e-3)
            working |= info.vars
        result = (tuple(order), growth)
        self._order_cache[key] = result
        if shared_key is not None:
            if len(bgp.order_cache) >= 128:
                bgp.order_cache.clear()
            bgp.order_cache[shared_key] = result
        return result

    def _select_triple(
        self,
        remaining: Sequence[_TripleInfo],
        bound: Set[Variable],
        graph: Any,
        index_stats: Dict[str, int],
    ) -> _TripleInfo:
        """Pick the pattern with the smallest estimated growth factor.

        A pattern that shares no variable with the bound set multiplies the
        whole intermediate (cartesian product), so it is heavily penalised
        unless its own cardinality is already tiny.  Ties break on textual
        order, keeping well-written queries on their original plan.
        """
        best = remaining[0]
        best_key: Optional[Tuple[float, int]] = None
        for info in remaining:
            estimate = self._estimate_triple(info, bound, graph, index_stats)
            connected = not bound or not info.vars or bool(info.vars & bound)
            cost = estimate if connected else estimate * _CARTESIAN_PENALTY
            key = (cost, info.index)
            if best_key is None or key < best_key:
                best, best_key = info, key
        return best

    @staticmethod
    def _estimate_triple(
        info: _TripleInfo,
        bound: Set[Variable],
        graph: Any,
        index_stats: Dict[str, int],
    ) -> float:
        """Expected matches per incoming solution for one triple pattern."""
        pattern = info.pattern
        subject_const = pattern.subject if info.subject_var is None else None
        object_const = pattern.object if info.object_var is None else None
        if info.is_path:
            seed = graph.cardinality((subject_const, None, object_const))
            base = (float(seed) + 1.0) * _PATH_PENALTY
            predicate_const = None
        else:
            predicate_const = pattern.predicate if info.predicate_var is None else None
            base = float(graph.cardinality((subject_const, predicate_const, object_const)))
            if base == 0.0:
                return 0.0
        estimate = base
        positions = (
            (info.subject_var, "subjects"),
            (info.predicate_var, "predicates"),
            (info.object_var, "objects"),
        )
        for var, position in positions:
            if var is None or var not in bound:
                continue
            if position == "objects" and predicate_const is not None:
                distinct = graph.predicate_stats(predicate_const).get("distinct_objects", 0)
            else:
                distinct = index_stats.get(position, 0)
            estimate /= max(1.0, float(distinct))
        return max(estimate, 1e-3)

    def _join_triple(
        self, info: _TripleInfo, chains: List[Any]
    ) -> Tuple[List[Any], int, int]:
        """Join one triple pattern into every chain (hash-join probe reuse).

        Probes are keyed by the substituted pattern; each distinct key is
        answered once against the graph and its matches (as addition
        tuples) are reused for every chain producing the same key.
        """
        pattern = info.pattern
        subject_var = info.subject_var
        predicate_var = info.predicate_var
        object_var = info.object_var
        subject_const = pattern.subject if subject_var is None else None
        object_const = pattern.object if object_var is None else None
        predicate_const = None if info.is_path else (
            pattern.predicate if predicate_var is None else None
        )

        def substituted(chain) -> Tuple[Any, Any, Any]:
            s = chain.get(subject_var) if subject_var is not None else subject_const
            o = chain.get(object_var) if object_var is not None else object_const
            p = (chain.get(predicate_var) if predicate_var is not None
                 else predicate_const)
            return s, p, o

        results: List[Any] = []
        if len(chains) == 1:
            # Singleton fast path (every naive OPTIONAL/UNION/MINUS inner
            # evaluation): no reuse possible, skip the probe table.
            s, p, o = substituted(chains[0])
            chain = chains[0]
            for additions in self._probe_triple(info, s, p, o):
                extended = chain
                for var, value in additions:
                    extended = _ChainSolution(extended, var, value)
                results.append(extended)
            return results, 1, 0
        # Probe keys only need the positions that can vary between chains:
        # the variable slots.  Constants contribute nothing to the key.
        var_slots = info.var_slots
        cache: Dict[Any, List[Tuple[Tuple[Variable, Any], ...]]] = {}
        probes = 0
        hits = 0
        if len(var_slots) == 1:
            key_var = var_slots[0][1]

            def probe_key(chain):
                return chain.get(key_var)
        else:
            key_vars = tuple(var for _, var in var_slots)

            def probe_key(chain):
                return tuple(chain.get(var) for var in key_vars)

        for chain in chains:
            key = probe_key(chain)
            matches = cache.get(key)
            if matches is None:
                probes += 1
                s, p, o = substituted(chain)
                matches = self._probe_triple(info, s, p, o)
                cache[key] = matches
            else:
                hits += 1
            for additions in matches:
                extended = chain
                for var, value in additions:
                    extended = _ChainSolution(extended, var, value)
                results.append(extended)
        return results, probes, hits

    def _filter_chains_encoded(
        self, expression: Expression, chains: List[Any], id_vars: Set[Variable]
    ) -> List[Any]:
        """Apply one pushed-down filter to encoded chains.

        Simple (in)equality constraints compile into ID-space predicates
        (:meth:`_compile_id_filter`) — two integer compares per row instead
        of a recursive expression walk over decoded terms.  Rows the
        compiled form cannot decide (and whole filters that don't compile)
        evaluate generically through a term-decoding view.
        """
        terms = self._dictionary.terms
        # Compilation depends only on which of the expression's variables
        # ride the encoded path, so the memo key projects id_vars onto them.
        key = (id(expression),
               frozenset(var for var in expression_variables(expression)
                         if var in id_vars))
        try:
            predicate = self._id_filter_cache[key]
        except KeyError:
            predicate = self._compile_id_filter(expression, id_vars)
            self._id_filter_cache[key] = predicate
        kept: List[Any] = []
        for chain in chains:
            if predicate is not None:
                verdict = predicate(chain)
                if verdict is True:
                    kept.append(chain)
                    continue
                if verdict is False:
                    continue
            view = _DecodingView(chain, id_vars, terms)
            try:
                value = evaluate_expression(expression, view, self._exists)
                if effective_boolean_value(value):
                    kept.append(chain)
            except ExpressionError:
                continue
        return kept

    def _compile_id_filter(self, expression: Expression, id_vars: Set[Variable]):
        """Compile ``expression`` into a tri-state ID-space predicate, if possible.

        Handles ``=`` / ``!=`` between variables bound by the encoded join
        and IRI/BNode constants, combined with ``||`` / ``&&``.  The
        returned callable maps a chain to ``True`` / ``False`` when the
        verdict is decidable on IDs alone — identical non-literal terms are
        equal, distinct non-literal terms are unequal, mixed literal /
        non-literal comparisons are unequal (matching ``_compare``) — and
        to ``None`` when SPARQL value semantics need the terms (unbound
        variables, literal/literal comparison, identical literals whose
        value space may disagree with term identity, e.g. NaN).  Returns
        ``None`` when the expression shape doesn't compile.
        """
        dictionary = self._dictionary
        kinds = dictionary.kinds

        def compile_node(expr):
            if not isinstance(expr, BinaryExpr):
                return None
            op = expr.operator
            if op in ("||", "&&"):
                left = compile_node(expr.left)
                if left is None:
                    return None
                right = compile_node(expr.right)
                if right is None:
                    return None
                if op == "||":
                    def disjunction(chain, _l=left, _r=right):
                        lv = _l(chain)
                        if lv is True:
                            return True
                        rv = _r(chain)
                        if rv is True:
                            return True
                        if lv is False and rv is False:
                            return False
                        return None
                    return disjunction

                def conjunction(chain, _l=left, _r=right):
                    lv = _l(chain)
                    if lv is False:
                        return False
                    rv = _r(chain)
                    if rv is False:
                        return False
                    if lv is True and rv is True:
                        return True
                    return None
                return conjunction
            if op not in ("=", "!="):
                return None
            sides = []
            for side in (expr.left, expr.right):
                if isinstance(side, VariableExpr):
                    if side.variable not in id_vars:
                        return None
                    sides.append((side.variable, None))
                elif (isinstance(side, TermExpr)
                      and isinstance(side.term, (IRI, BNode))):
                    sides.append((None, dictionary.intern(side.term)))
                else:
                    return None
            (left_var, left_const), (right_var, right_const) = sides
            negate = op == "!="

            def equality(chain, _lv=left_var, _lc=left_const, _rv=right_var,
                         _rc=right_const, _neg=negate, _kinds=kinds):
                if _lv is not None:
                    a = chain.get(_lv)
                    if a is None:
                        return None  # unbound: generic path raises, dropping the row
                    a_literal = _kinds[a] == KIND_LITERAL
                else:
                    a = _lc
                    a_literal = False
                if _rv is not None:
                    b = chain.get(_rv)
                    if b is None:
                        return None
                    b_literal = _kinds[b] == KIND_LITERAL
                else:
                    b = _rc
                    b_literal = False
                if a == b:
                    if a_literal:
                        return None
                    return not _neg
                if a_literal and b_literal:
                    return None
                return _neg
            return equality

        return compile_node(expression)

    def _join_triple_ids(
        self, info: _TripleInfo, chains: List[Any], id_vars: Set[Variable]
    ) -> Tuple[List[Any], int, int, Set[Variable]]:
        """The encoded mirror of :meth:`_join_triple`.

        Pattern constants are encoded once per triple; bound variables
        substitute either their chain-cell ID (variables in ``id_vars``)
        or their term encoded through the dictionary (variables bound by
        the incoming solutions).  Matches come straight from the graph's
        integer indexes and the addition cells store IDs — nothing is
        decoded here.  Returns the extended chains, probe counts, and the
        set of variables this join bound (their cells hold IDs).
        """
        dictionary = self._dictionary
        lookup = dictionary.ids.get
        pattern = info.pattern
        subject_var = info.subject_var
        predicate_var = info.predicate_var
        object_var = info.object_var
        # -1 is the "bound to a term the graph has never seen" sentinel: a
        # valid ID is never negative, and such a probe cannot match.
        subject_const = object_const = predicate_const = None
        if subject_var is None:
            subject_const = lookup(pattern.subject, -1)
        if object_var is None:
            object_const = lookup(pattern.object, -1)
        if predicate_var is None:
            predicate_const = lookup(pattern.predicate, -1)
        if -1 in (subject_const, predicate_const, object_const):
            return [], 1, 0, set()
        subject_is_id = subject_var in id_vars
        predicate_is_id = predicate_var in id_vars
        object_is_id = object_var in id_vars

        def substituted(chain) -> Tuple[Any, Any, Any]:
            if subject_var is None:
                s = subject_const
            else:
                s = chain.get(subject_var)
                if s is not None and not subject_is_id:
                    s = lookup(s, -1)
            if predicate_var is None:
                p = predicate_const
            else:
                p = chain.get(predicate_var)
                if p is not None and not predicate_is_id:
                    p = lookup(p, -1)
            if object_var is None:
                o = object_const
            else:
                o = chain.get(object_var)
                if o is not None and not object_is_id:
                    o = lookup(o, -1)
            return s, p, o

        new_vars: Set[Variable] = set()
        results: List[Any] = []
        if len(chains) == 1:
            # Singleton fast path: no reuse possible, skip the probe table.
            chain = chains[0]
            s, p, o = substituted(chain)
            matches = self._probe_triple_ids(info, s, p, o)
            if matches:
                new_vars.update(var for var, _ in matches[0])
            for additions in matches:
                extended = chain
                for var, value in additions:
                    extended = _ChainSolution(extended, var, value)
                results.append(extended)
            return results, 1, 0, new_vars
        var_slots = info.var_slots
        cache: Dict[Any, List[Tuple[Tuple[Variable, Any], ...]]] = {}
        probes = 0
        hits = 0
        if len(var_slots) == 1:
            key_var = var_slots[0][1]

            def probe_key(chain):
                return chain.get(key_var)
        else:
            key_vars = tuple(var for _, var in var_slots)

            def probe_key(chain):
                return tuple(chain.get(var) for var in key_vars)

        for chain in chains:
            key = probe_key(chain)
            matches = cache.get(key)
            if matches is None:
                probes += 1
                s, p, o = substituted(chain)
                matches = self._probe_triple_ids(info, s, p, o)
                cache[key] = matches
                if matches and not new_vars:
                    new_vars.update(var for var, _ in matches[0])
            else:
                hits += 1
            for additions in matches:
                extended = chain
                for var, value in additions:
                    extended = _ChainSolution(extended, var, value)
                results.append(extended)
        return results, probes, hits, new_vars

    def _probe_triple_ids(
        self, info: _TripleInfo, s: Any, p: Any, o: Any
    ) -> List[Tuple[Tuple[Variable, Any], ...]]:
        """All encoded matches of a substituted pattern, as addition tuples.

        A ``-1`` in any position means a bound term unknown to the graph's
        dictionary: nothing can match.  Additions mirror
        :meth:`_probe_triple`, including the repeated-variable overwrite
        behaviour, so planned evaluation stays row-identical to naive.
        """
        if -1 in (s, p, o):
            return []
        subject_var = info.subject_var
        predicate_var = info.predicate_var
        object_var = info.object_var
        matches: List[Tuple[Tuple[Variable, Any], ...]] = []
        for ms, mp, mo in self.graph.triples_ids((s, p, o)):
            additions: Dict[Variable, Any] = {}
            if subject_var is not None and s is None:
                additions[subject_var] = ms
            if predicate_var is not None and p is None:
                additions[predicate_var] = mp
            if object_var is not None and o is None:
                additions[object_var] = mo
            matches.append(tuple(additions.items()))
        return matches

    def _probe_triple(
        self, info: _TripleInfo, s: Any, p: Any, o: Any
    ) -> List[Tuple[Tuple[Variable, Any], ...]]:
        """All matches of the substituted pattern, as addition tuples.

        Additions cover only the positions that were unbound in the probe.
        A variable repeated across positions keeps the naive evaluator's
        behaviour (the later position's dict write wins), so planned and
        naive evaluation stay row-identical even on degenerate patterns.
        """
        matches: List[Tuple[Tuple[Variable, Any], ...]] = []
        if info.is_path:
            for ms, mo in evaluate_path(self.graph, info.pattern.predicate, s, o):
                additions: Dict[Variable, Any] = {}
                if info.subject_var is not None and s is None:
                    additions[info.subject_var] = ms
                if info.object_var is not None and o is None:
                    additions[info.object_var] = mo
                matches.append(tuple(additions.items()))
        else:
            for ms, mp, mo in self.graph.triples((s, p, o)):
                additions = {}
                if info.subject_var is not None and s is None:
                    additions[info.subject_var] = ms
                if info.predicate_var is not None and p is None:
                    additions[info.predicate_var] = mp
                if info.object_var is not None and o is None:
                    additions[info.object_var] = mo
                matches.append(tuple(additions.items()))
        return matches

