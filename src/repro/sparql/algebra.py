"""Abstract syntax / algebra nodes for the SPARQL subset.

The parser produces these dataclasses and the evaluator walks them.  The
split keeps both sides readable and lets tests construct algebra nodes
directly when exercising the evaluator in isolation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple, Union

from ..rdf.terms import IRI, Literal, Variable, BNode

__all__ = [
    "PathExpr",
    "PredicatePath",
    "InversePath",
    "SequencePath",
    "AlternativePath",
    "ModifiedPath",
    "TriplePattern",
    "Expression",
    "VariableExpr",
    "TermExpr",
    "BinaryExpr",
    "UnaryExpr",
    "FunctionExpr",
    "ExistsExpr",
    "InExpr",
    "AggregateExpr",
    "Pattern",
    "BGP",
    "GroupPattern",
    "FilterPattern",
    "OptionalPattern",
    "UnionPattern",
    "MinusPattern",
    "BindPattern",
    "ValuesPattern",
    "SelectQuery",
    "AskQuery",
    "ConstructQuery",
    "Query",
    "OrderCondition",
    "Projection",
]

TermOrVar = Union[IRI, Literal, Variable, BNode]


# ---------------------------------------------------------------------------
# Property paths
# ---------------------------------------------------------------------------
class PathExpr:
    """Base class for property-path expressions."""


@dataclass(frozen=True)
class PredicatePath(PathExpr):
    """A plain predicate IRI used as a path of length one."""

    iri: IRI


@dataclass(frozen=True)
class InversePath(PathExpr):
    """``^path`` — traverse the path from object to subject."""

    path: PathExpr


@dataclass(frozen=True)
class SequencePath(PathExpr):
    """``p1 / p2`` — path composition."""

    steps: Tuple[PathExpr, ...]


@dataclass(frozen=True)
class AlternativePath(PathExpr):
    """``p1 | p2`` — either branch."""

    options: Tuple[PathExpr, ...]


@dataclass(frozen=True)
class ModifiedPath(PathExpr):
    """``path+``, ``path*`` or ``path?``."""

    path: PathExpr
    modifier: str  # one of '+', '*', '?'


# ---------------------------------------------------------------------------
# Triple patterns
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class TriplePattern:
    """A triple pattern whose predicate may be a term, variable or path."""

    subject: TermOrVar
    predicate: Union[TermOrVar, PathExpr]
    object: TermOrVar

    def variables(self) -> List[Variable]:
        result = []
        for term in (self.subject, self.predicate, self.object):
            if isinstance(term, Variable):
                result.append(term)
        return result


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------
class Expression:
    """Base class for filter/bind expressions."""


@dataclass(frozen=True)
class VariableExpr(Expression):
    variable: Variable


@dataclass(frozen=True)
class TermExpr(Expression):
    term: Union[IRI, Literal]


@dataclass(frozen=True)
class BinaryExpr(Expression):
    operator: str
    left: Expression
    right: Expression


@dataclass(frozen=True)
class UnaryExpr(Expression):
    operator: str
    operand: Expression


@dataclass(frozen=True)
class FunctionExpr(Expression):
    name: str
    args: Tuple[Expression, ...]


@dataclass(frozen=True)
class ExistsExpr(Expression):
    pattern: "Pattern"
    negated: bool = False


@dataclass(frozen=True)
class InExpr(Expression):
    value: Expression
    options: Tuple[Expression, ...]
    negated: bool = False


@dataclass(frozen=True)
class AggregateExpr(Expression):
    name: str  # COUNT, SUM, AVG, MIN, MAX, SAMPLE, GROUP_CONCAT
    argument: Optional[Expression]  # None means COUNT(*)
    distinct: bool = False
    separator: str = " "


# ---------------------------------------------------------------------------
# Graph patterns
# ---------------------------------------------------------------------------
class Pattern:
    """Base class for group graph pattern elements."""


@dataclass
class BGP(Pattern):
    """A basic graph pattern: an ordered list of triple patterns."""

    triples: List[TriplePattern] = field(default_factory=list)


@dataclass
class GroupPattern(Pattern):
    """A ``{ ... }`` group: sub-patterns evaluated left to right."""

    patterns: List[Pattern] = field(default_factory=list)


@dataclass
class FilterPattern(Pattern):
    expression: Expression


@dataclass
class OptionalPattern(Pattern):
    pattern: Pattern


@dataclass
class UnionPattern(Pattern):
    alternatives: List[Pattern] = field(default_factory=list)


@dataclass
class MinusPattern(Pattern):
    pattern: Pattern


@dataclass
class BindPattern(Pattern):
    expression: Expression
    variable: Variable


@dataclass
class ValuesPattern(Pattern):
    variables: List[Variable] = field(default_factory=list)
    rows: List[List[Optional[TermOrVar]]] = field(default_factory=list)


# ---------------------------------------------------------------------------
# Queries
# ---------------------------------------------------------------------------
@dataclass
class OrderCondition:
    expression: Expression
    descending: bool = False


@dataclass
class Projection:
    """One projected column: a bare variable or ``(expr AS ?var)``."""

    variable: Variable
    expression: Optional[Expression] = None


@dataclass
class SelectQuery:
    projections: List[Projection]
    where: Pattern
    distinct: bool = False
    select_all: bool = False
    group_by: List[Expression] = field(default_factory=list)
    having: List[Expression] = field(default_factory=list)
    order_by: List[OrderCondition] = field(default_factory=list)
    limit: Optional[int] = None
    offset: Optional[int] = None


@dataclass
class AskQuery:
    where: Pattern


@dataclass
class ConstructQuery:
    template: List[TriplePattern]
    where: Pattern
    distinct: bool = False
    limit: Optional[int] = None
    offset: Optional[int] = None


Query = Union[SelectQuery, AskQuery, ConstructQuery]
