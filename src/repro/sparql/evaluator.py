"""Evaluation of parsed SPARQL queries against a graph.

The evaluator works on *solution mappings* (dicts from
:class:`~repro.rdf.terms.Variable` to RDF terms).  A group graph pattern is
evaluated left to right, joining each element into the running solution
sequence; ``FILTER`` constraints are collected and applied over the whole
group, matching the scoping rules of the SPARQL algebra.

This strict left-to-right strategy is the **naive** path.  Production
evaluation goes through the cost-based planner
(:mod:`repro.sparql.planner`), which reorders joins and pushes filters;
:class:`QueryEvaluator` / :func:`evaluate_query` survive as the
differential-testing oracle (``PreparedQuery.evaluate_naive``) that the
planned path must match row for row.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..rdf.graph import Graph
from ..rdf.terms import BNode, IRI, Literal, Variable
from .algebra import (
    AggregateExpr,
    AskQuery,
    BGP,
    BindPattern,
    ConstructQuery,
    ExistsExpr,
    Expression,
    FilterPattern,
    FunctionExpr,
    GroupPattern,
    MinusPattern,
    OptionalPattern,
    PathExpr,
    Pattern,
    Projection,
    Query,
    SelectQuery,
    TriplePattern,
    UnionPattern,
    ValuesPattern,
    VariableExpr,
    BinaryExpr,
    UnaryExpr,
    InExpr,
)
from .functions import ExpressionError, effective_boolean_value, evaluate_expression
from .parser import parse_query
from .paths import evaluate_path
from .results import Result, ResultRow

__all__ = ["evaluate_query", "QueryEvaluator"]

Solution = Dict[Variable, Any]


def _substitute(term, solution: Solution):
    """Replace a variable with its binding (if any)."""
    if isinstance(term, Variable):
        return solution.get(term)
    return term


def _merge(solution: Solution, additions: Mapping[Variable, Any]) -> Optional[Solution]:
    """Merge two solution mappings, returning ``None`` on conflict."""
    merged = dict(solution)
    for key, value in additions.items():
        existing = merged.get(key)
        if existing is None:
            merged[key] = value
        elif existing != value:
            return None
    return merged


def _term_sort_key(term: Any) -> Tuple[int, Any]:
    """Total order over terms for ORDER BY: unbound < bnode < IRI < literal."""
    if term is None:
        return (0, "")
    if isinstance(term, BNode):
        return (1, str(term))
    if isinstance(term, IRI):
        return (2, str(term))
    if isinstance(term, Literal):
        if term.is_numeric():
            try:
                return (3, (0, float(term.value)))
            except (TypeError, ValueError):
                return (3, (1, term.lexical))
        return (3, (1, term.lexical))
    return (4, str(term))


class QueryEvaluator:
    """Evaluates algebra trees produced by :func:`parse_query`."""

    def __init__(self, graph) -> None:
        self.graph = graph

    # ------------------------------------------------------------------
    # Pattern evaluation
    # ------------------------------------------------------------------
    def evaluate_pattern(self, pattern: Pattern, solutions: List[Solution]) -> List[Solution]:
        """Extend each incoming solution with every match of ``pattern``."""
        if isinstance(pattern, GroupPattern):
            return self._evaluate_group(pattern, solutions)
        if isinstance(pattern, BGP):
            return self._evaluate_bgp(pattern, solutions)
        if isinstance(pattern, FilterPattern):
            return self._apply_filter(pattern.expression, solutions)
        if isinstance(pattern, OptionalPattern):
            return self._evaluate_optional(pattern, solutions)
        if isinstance(pattern, UnionPattern):
            return self._evaluate_union(pattern, solutions)
        if isinstance(pattern, MinusPattern):
            return self._evaluate_minus(pattern, solutions)
        if isinstance(pattern, BindPattern):
            return self._evaluate_bind(pattern, solutions)
        if isinstance(pattern, ValuesPattern):
            return self._evaluate_values(pattern, solutions)
        raise TypeError(f"Unsupported pattern: {pattern!r}")

    def _evaluate_group(self, group: GroupPattern, solutions: List[Solution]) -> List[Solution]:
        filters: List[Expression] = []
        current = solutions
        for element in group.patterns:
            if isinstance(element, FilterPattern):
                filters.append(element.expression)
                continue
            current = self.evaluate_pattern(element, current)
        for expression in filters:
            current = self._apply_filter(expression, current)
        return current

    def _evaluate_bgp(self, bgp: BGP, solutions: List[Solution]) -> List[Solution]:
        current = solutions
        for triple in bgp.triples:
            current = self._match_triple(triple, current)
            if not current:
                return []
        return current

    def _match_triple(self, pattern: TriplePattern, solutions: List[Solution]) -> List[Solution]:
        results: List[Solution] = []
        predicate = pattern.predicate
        is_path = isinstance(predicate, PathExpr)
        for solution in solutions:
            subject = _substitute(pattern.subject, solution)
            obj = _substitute(pattern.object, solution)
            if is_path:
                for s, o in evaluate_path(self.graph, predicate, subject, obj):
                    additions: Dict[Variable, Any] = {}
                    if isinstance(pattern.subject, Variable):
                        additions[pattern.subject] = s
                    if isinstance(pattern.object, Variable):
                        additions[pattern.object] = o
                    merged = _merge(solution, additions)
                    if merged is not None:
                        results.append(merged)
            else:
                pred = _substitute(predicate, solution)
                for s, p, o in self.graph.triples((subject, pred, obj)):
                    additions = {}
                    if isinstance(pattern.subject, Variable):
                        additions[pattern.subject] = s
                    if isinstance(predicate, Variable):
                        additions[predicate] = p
                    if isinstance(pattern.object, Variable):
                        additions[pattern.object] = o
                    merged = _merge(solution, additions)
                    if merged is not None:
                        results.append(merged)
        return results

    def _apply_filter(self, expression: Expression, solutions: List[Solution]) -> List[Solution]:
        kept: List[Solution] = []
        for solution in solutions:
            try:
                value = evaluate_expression(expression, solution, self._exists)
                if effective_boolean_value(value):
                    kept.append(solution)
            except ExpressionError:
                continue
        return kept

    def _exists(self, pattern: Pattern, bindings: Mapping[Variable, Any]) -> bool:
        matches = self.evaluate_pattern(pattern, [dict(bindings)])
        return bool(matches)

    def _evaluate_optional(self, pattern: OptionalPattern, solutions: List[Solution]) -> List[Solution]:
        results: List[Solution] = []
        for solution in solutions:
            extended = self.evaluate_pattern(pattern.pattern, [solution])
            if extended:
                results.extend(extended)
            else:
                results.append(solution)
        return results

    def _evaluate_union(self, pattern: UnionPattern, solutions: List[Solution]) -> List[Solution]:
        results: List[Solution] = []
        for solution in solutions:
            for alternative in pattern.alternatives:
                results.extend(self.evaluate_pattern(alternative, [solution]))
        return results

    def _evaluate_minus(self, pattern: MinusPattern, solutions: List[Solution]) -> List[Solution]:
        if not solutions:
            return []
        # The inner pattern is loop-invariant: evaluate it once and index the
        # candidates by their variable domain, then answer each outer
        # solution with set lookups instead of rescanning every candidate.
        candidates = self.evaluate_pattern(pattern.pattern, [{}])
        if not candidates:
            return list(solutions)
        by_domain: Dict[frozenset, List[Solution]] = {}
        for candidate in candidates:
            by_domain.setdefault(frozenset(candidate), []).append(candidate)
        lookups: Dict[Tuple[frozenset, Tuple[Variable, ...]], set] = {}
        kept: List[Solution] = []
        for solution in solutions:
            solution_vars = set(solution)
            removed = False
            for domain, members in by_domain.items():
                shared = domain & solution_vars
                if not shared:
                    continue
                shared_key = tuple(sorted(shared, key=str))
                table = lookups.get((domain, shared_key))
                if table is None:
                    table = {tuple(member[v] for v in shared_key) for member in members}
                    lookups[(domain, shared_key)] = table
                if tuple(solution[v] for v in shared_key) in table:
                    removed = True
                    break
            if not removed:
                kept.append(solution)
        return kept

    def _evaluate_bind(self, pattern: BindPattern, solutions: List[Solution]) -> List[Solution]:
        results: List[Solution] = []
        for solution in solutions:
            if pattern.variable in solution:
                raise ExpressionError(
                    f"BIND would rebind already-bound variable ?{pattern.variable}"
                )
            try:
                value = evaluate_expression(pattern.expression, solution, self._exists)
            except ExpressionError:
                value = None
            extended = dict(solution)
            if value is not None:
                extended[pattern.variable] = value
            results.append(extended)
        return results

    def _evaluate_values(self, pattern: ValuesPattern, solutions: List[Solution]) -> List[Solution]:
        results: List[Solution] = []
        for solution in solutions:
            for row in pattern.rows:
                additions = {
                    var: value
                    for var, value in zip(pattern.variables, row)
                    if value is not None
                }
                merged = _merge(solution, additions)
                if merged is not None:
                    results.append(merged)
        return results

    # ------------------------------------------------------------------
    # Query forms
    # ------------------------------------------------------------------
    def evaluate(self, query: Query, init_bindings: Optional[Solution] = None) -> Result:
        """Evaluate a parsed query; ``init_bindings`` pre-binds variables
        (the prepared-statement parameter mechanism)."""
        initial: List[Solution] = [dict(init_bindings) if init_bindings else {}]
        if isinstance(query, SelectQuery):
            return self._evaluate_select(query, initial)
        if isinstance(query, AskQuery):
            solutions = self.evaluate_pattern(query.where, initial)
            return Result("ASK", ask_answer=bool(solutions))
        if isinstance(query, ConstructQuery):
            return self._evaluate_construct(query, initial)
        raise TypeError(f"Unsupported query: {query!r}")

    # -- SELECT ----------------------------------------------------------
    def _evaluate_select(self, query: SelectQuery, initial: List[Solution]) -> Result:
        solutions = self.evaluate_pattern(query.where, initial)

        has_aggregates = any(
            projection.expression is not None and _contains_aggregate(projection.expression)
            for projection in query.projections
        )
        if query.group_by or has_aggregates:
            solutions = self._group_and_aggregate(query, solutions)
        else:
            solutions = self._project_expressions(query, solutions)

        if query.order_by:
            solutions = self._order(query, solutions)

        variables = self._projection_variables(query, solutions)
        rows = [
            ResultRow(variables, [solution.get(v) for v in variables])
            for solution in solutions
        ]
        if query.distinct:
            unique: List[ResultRow] = []
            seen = set()
            for row in rows:
                key = tuple(row)
                if key not in seen:
                    seen.add(key)
                    unique.append(row)
            rows = unique
        if query.offset:
            rows = rows[query.offset:]
        if query.limit is not None:
            rows = rows[: query.limit]
        return Result("SELECT", variables=variables, rows=rows)

    def _projection_variables(self, query: SelectQuery, solutions: List[Solution]) -> List[Variable]:
        if query.select_all:
            seen: List[Variable] = []
            for solution in solutions:
                for variable in solution:
                    if variable not in seen:
                        seen.append(variable)
            return sorted(seen, key=str)
        return [projection.variable for projection in query.projections]

    def _project_expressions(self, query: SelectQuery, solutions: List[Solution]) -> List[Solution]:
        expression_projections = [p for p in query.projections if p.expression is not None]
        if not expression_projections:
            return solutions
        projected: List[Solution] = []
        for solution in solutions:
            extended = dict(solution)
            for projection in expression_projections:
                try:
                    extended[projection.variable] = evaluate_expression(
                        projection.expression, solution, self._exists
                    )
                except ExpressionError:
                    extended[projection.variable] = None
            projected.append(extended)
        return projected

    def _group_and_aggregate(self, query: SelectQuery, solutions: List[Solution]) -> List[Solution]:
        groups: Dict[Tuple, List[Solution]] = {}
        for solution in solutions:
            key_parts = []
            for expr in query.group_by:
                try:
                    key_parts.append(evaluate_expression(expr, solution, self._exists))
                except ExpressionError:
                    key_parts.append(None)
            groups.setdefault(tuple(key_parts), []).append(solution)
        if not groups and not query.group_by:
            groups[()] = []

        aggregated: List[Solution] = []
        for key, members in groups.items():
            row: Solution = {}
            for expr, value in zip(query.group_by, key):
                if isinstance(expr, VariableExpr) and value is not None:
                    row[expr.variable] = value
            for projection in query.projections:
                if projection.expression is None:
                    if members:
                        row.setdefault(projection.variable, members[0].get(projection.variable))
                    continue
                row[projection.variable] = self._evaluate_projection_with_aggregates(
                    projection.expression, members
                )
            keep = True
            for having in query.having:
                try:
                    value = self._evaluate_projection_with_aggregates(having, members, row)
                    keep = keep and effective_boolean_value(value)
                except ExpressionError:
                    keep = False
            if keep:
                aggregated.append(row)
        return aggregated

    def _evaluate_projection_with_aggregates(
        self,
        expression: Expression,
        members: List[Solution],
        row: Optional[Solution] = None,
    ) -> Any:
        if isinstance(expression, AggregateExpr):
            return self._evaluate_aggregate(expression, members)
        if isinstance(expression, VariableExpr):
            if row and expression.variable in row:
                return row[expression.variable]
            if members:
                return members[0].get(expression.variable)
            return None
        if isinstance(expression, BinaryExpr):
            left = self._evaluate_projection_with_aggregates(expression.left, members, row)
            right = self._evaluate_projection_with_aggregates(expression.right, members, row)
            rebuilt = BinaryExpr(expression.operator, _as_term_expr(left), _as_term_expr(right))
            return evaluate_expression(rebuilt, {}, self._exists)
        if isinstance(expression, UnaryExpr):
            operand = self._evaluate_projection_with_aggregates(expression.operand, members, row)
            rebuilt = UnaryExpr(expression.operator, _as_term_expr(operand))
            return evaluate_expression(rebuilt, {}, self._exists)
        if isinstance(expression, FunctionExpr):
            args = tuple(
                _as_term_expr(self._evaluate_projection_with_aggregates(a, members, row))
                for a in expression.args
            )
            return evaluate_expression(FunctionExpr(expression.name, args), {}, self._exists)
        return evaluate_expression(expression, members[0] if members else {}, self._exists)

    def _evaluate_aggregate(self, aggregate: AggregateExpr, members: List[Solution]) -> Any:
        values: List[Any] = []
        if aggregate.argument is None:
            values = [True for _ in members]
        else:
            for member in members:
                try:
                    value = evaluate_expression(aggregate.argument, member, self._exists)
                except ExpressionError:
                    continue
                if value is not None:
                    values.append(value)
        if aggregate.distinct:
            # Hash-based dedup (terms hash consistently with their equality);
            # unhashable values fall back to the linear membership scan.
            unique: List[Any] = []
            seen = set()
            for value in values:
                try:
                    if value in seen:
                        continue
                    seen.add(value)
                except TypeError:
                    if value in unique:
                        continue
                unique.append(value)
            values = unique
        name = aggregate.name
        if name == "COUNT":
            return Literal(len(values))
        if name == "SAMPLE":
            return values[0] if values else None
        if name == "GROUP_CONCAT":
            return Literal(aggregate.separator.join(str(v) for v in values))
        numbers = []
        for value in values:
            if isinstance(value, Literal) and value.is_numeric():
                numbers.append(float(value.value))
        if not numbers:
            return None
        if name == "SUM":
            total = sum(numbers)
            return Literal(int(total)) if total == int(total) else Literal(total)
        if name == "AVG":
            return Literal(sum(numbers) / len(numbers))
        if name == "MIN":
            low = min(numbers)
            return Literal(int(low)) if low == int(low) else Literal(low)
        if name == "MAX":
            high = max(numbers)
            return Literal(int(high)) if high == int(high) else Literal(high)
        raise ExpressionError(f"unsupported aggregate {name}")

    def _order(self, query: SelectQuery, solutions: List[Solution]) -> List[Solution]:
        # Decorate-sort-undecorate: each sort key is evaluated once per
        # solution, then the (stable) per-condition sorts run over the
        # precomputed keys so mixed ASC/DESC conditions compose without
        # re-evaluating expressions on every comparison pass.
        conditions = query.order_by
        decorated = []
        for solution in solutions:
            keys = []
            for condition in conditions:
                try:
                    value = evaluate_expression(condition.expression, solution, self._exists)
                except ExpressionError:
                    value = None
                keys.append(_term_sort_key(value))
            decorated.append((keys, solution))
        for position in range(len(conditions) - 1, -1, -1):
            decorated.sort(
                key=lambda item, position=position: item[0][position],
                reverse=conditions[position].descending,
            )
        return [solution for _, solution in decorated]

    # -- CONSTRUCT ---------------------------------------------------------
    def _evaluate_construct(self, query: ConstructQuery, initial: List[Solution]) -> Result:
        solutions = self.evaluate_pattern(query.where, initial)
        if query.offset:
            solutions = solutions[query.offset:]
        if query.limit is not None:
            solutions = solutions[: query.limit]
        graph = Graph()
        if hasattr(self.graph, "namespace_manager"):
            graph.namespace_manager = self.graph.namespace_manager.copy()
        for solution in solutions:
            bnode_map: Dict[BNode, BNode] = {}
            for template in query.template:
                s = _instantiate(template.subject, solution, bnode_map)
                p = _instantiate(template.predicate, solution, bnode_map)
                o = _instantiate(template.object, solution, bnode_map)
                if s is None or p is None or o is None:
                    continue
                if isinstance(s, Literal) or not isinstance(p, IRI):
                    continue
                graph.add((s, p, o))
        return Result("CONSTRUCT", graph=graph)


def _as_term_expr(value):
    from .algebra import TermExpr

    if isinstance(value, Expression):
        return value
    return TermExpr(value)


def _instantiate(term, solution: Solution, bnode_map: Dict[BNode, BNode]):
    if isinstance(term, Variable):
        return solution.get(term)
    if isinstance(term, BNode):
        return bnode_map.setdefault(term, BNode())
    return term


def _contains_aggregate(expression: Expression) -> bool:
    if isinstance(expression, AggregateExpr):
        return True
    if isinstance(expression, BinaryExpr):
        return _contains_aggregate(expression.left) or _contains_aggregate(expression.right)
    if isinstance(expression, UnaryExpr):
        return _contains_aggregate(expression.operand)
    if isinstance(expression, FunctionExpr):
        return any(_contains_aggregate(arg) for arg in expression.args)
    if isinstance(expression, InExpr):
        return _contains_aggregate(expression.value) or any(
            _contains_aggregate(option) for option in expression.options
        )
    return False


def evaluate_query(graph, query_text: str, init_bindings: Optional[Mapping[str, Any]] = None) -> Result:
    """Parse and evaluate ``query_text`` against ``graph``."""
    namespaces = getattr(graph, "namespace_manager", None)
    query = parse_query(query_text, namespaces)
    evaluator = QueryEvaluator(graph)
    bindings: Optional[Solution] = None
    if init_bindings:
        bindings = {Variable(str(k).lstrip("?$")): v for k, v in init_bindings.items()}
    return evaluator.evaluate(query, bindings)
