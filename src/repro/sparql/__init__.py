"""A SPARQL 1.1 subset engine for querying :class:`repro.rdf.Graph`.

The public entry points are :func:`query` (parse + evaluate in one call,
also reachable as ``Graph.query``) and :func:`prepare` for queries that are
evaluated repeatedly (the benchmark harness uses this to separate parse
time from evaluation time).
"""

from typing import Any, Mapping, Optional

from .algebra import Query
from .evaluator import QueryEvaluator, evaluate_query
from .parser import parse_query
from .results import Result, ResultRow
from .tokenizer import SparqlSyntaxError

__all__ = [
    "PreparedQuery",
    "Query",
    "QueryEvaluator",
    "Result",
    "ResultRow",
    "SparqlSyntaxError",
    "parse_query",
    "prepare",
    "query",
]


class PreparedQuery:
    """A parsed query that can be evaluated against many graphs."""

    def __init__(self, text: str, namespaces=None) -> None:
        self.text = text
        self.algebra = parse_query(text, namespaces)

    def evaluate(self, graph, init_bindings: Optional[Mapping[str, Any]] = None) -> Result:
        from ..rdf.terms import Variable

        evaluator = QueryEvaluator(graph)
        bindings = None
        if init_bindings:
            bindings = {Variable(str(k).lstrip("?$")): v for k, v in init_bindings.items()}
        return evaluator.evaluate(self.algebra, bindings)


def query(graph, query_text: str, init_bindings: Optional[Mapping[str, Any]] = None) -> Result:
    """Evaluate ``query_text`` against ``graph`` and return a :class:`Result`."""
    return evaluate_query(graph, query_text, init_bindings)


def prepare(query_text: str, namespaces=None) -> PreparedQuery:
    """Parse ``query_text`` once and return a reusable :class:`PreparedQuery`."""
    return PreparedQuery(query_text, namespaces)
