"""A SPARQL 1.1 subset engine for querying :class:`repro.rdf.Graph`.

The public entry points are :func:`query` (parse + evaluate in one call,
also reachable as ``Graph.query``) and :func:`prepare` for queries that are
evaluated repeatedly (the benchmark harness uses this to separate parse
time from evaluation time).

For server-style workloads where the *same* query text is prepared over
and over (e.g. the competency-question templates behind every explanation
request), :func:`prepare_cached` adds a process-wide LRU cache of prepared
queries: the first call parses, every later call with the same text is a
dictionary lookup.  Per-request parameters (the question IRI, a user IRI)
are supplied at evaluation time through ``init_bindings``.

Evaluation is **planned** by default: a :class:`PreparedQuery` lazily
compiles its algebra into a cost-based execution plan
(:mod:`repro.sparql.planner` — index-aware join reordering, filter
pushdown, hash-join probe reuse) and caches the plan for every later
evaluation, so the prepared-query cache doubles as a compiled-plan cache.
The original left-to-right strategy remains available as
:meth:`PreparedQuery.evaluate_naive` / :func:`evaluate_query`, serving as
the differential-testing oracle.
"""

import threading
from collections import OrderedDict
from typing import Any, Dict, Mapping, Optional, Tuple

from .algebra import Query
from .evaluator import QueryEvaluator, evaluate_query
from .parser import parse_query
from .planner import (
    CompiledPlan,
    PlanEvaluator,
    compile_plan,
    planner_stats,
    reset_planner_stats,
)
from .results import Result, ResultRow
from .tokenizer import SparqlSyntaxError

__all__ = [
    "CompiledPlan",
    "PlanEvaluator",
    "PreparedQuery",
    "PreparedQueryCache",
    "Query",
    "QueryEvaluator",
    "Result",
    "ResultRow",
    "SparqlSyntaxError",
    "compile_plan",
    "evaluate_query",
    "parse_query",
    "planner_stats",
    "prepare",
    "prepare_cached",
    "prepared_cache",
    "query",
    "reset_planner_stats",
]


class PreparedQuery:
    """A parsed query that can be evaluated against many graphs.

    Parsing happens once, in the constructor; :meth:`evaluate` can then be
    called any number of times, optionally with per-call ``init_bindings``
    that pre-bind variables (the prepared-statement idiom: one template,
    many parameterisations).

    The first :meth:`evaluate` compiles a cost-based execution plan
    (:func:`repro.sparql.planner.compile_plan`); later evaluations reuse
    it — plan compilation is structural, so one plan serves every graph
    and every parameterisation.  :meth:`evaluate_naive` runs the original
    left-to-right strategy, the oracle the differential suite compares
    planned results against.
    """

    def __init__(self, text: str, namespaces=None) -> None:
        self.text = text
        self.algebra = parse_query(text, namespaces)
        self._plan: Optional[CompiledPlan] = None

    @property
    def plan(self) -> CompiledPlan:
        """The compiled plan, built on first access and cached for reuse."""
        plan = self._plan
        if plan is None:
            # Benign race: two threads may compile the same (deterministic)
            # plan once each; last write wins.
            plan = compile_plan(self.algebra)
            self._plan = plan
        return plan

    @staticmethod
    def _bindings(init_bindings: Optional[Mapping[str, Any]]):
        from ..rdf.terms import Variable

        if not init_bindings:
            return None
        return {Variable(str(k).lstrip("?$")): v for k, v in init_bindings.items()}

    def evaluate(self, graph, init_bindings: Optional[Mapping[str, Any]] = None) -> Result:
        """Evaluate against ``graph``; ``init_bindings`` maps variable names to terms."""
        hit = self._plan is not None
        plan = self.plan
        evaluator = PlanEvaluator(graph)
        if hit:
            evaluator.note_plan_hit()
        return evaluator.evaluate(plan.algebra, self._bindings(init_bindings))

    def evaluate_naive(self, graph, init_bindings: Optional[Mapping[str, Any]] = None) -> Result:
        """Evaluate with the unplanned left-to-right strategy (the oracle)."""
        evaluator = QueryEvaluator(graph)
        return evaluator.evaluate(self.algebra, self._bindings(init_bindings))


class PreparedQueryCache:
    """A bounded, thread-safe LRU cache of :class:`PreparedQuery` objects.

    Keyed by ``(query text, id(namespace_manager))``; the namespace manager
    is retained in the entry so its identity key stays valid for the life
    of the entry.  A module-level instance backs :func:`prepare_cached`;
    services that want isolation can hold their own.
    """

    def __init__(self, max_size: int = 128) -> None:
        if max_size <= 0:
            raise ValueError("max_size must be positive")
        self.max_size = max_size
        self._entries: "OrderedDict[Tuple[str, int], Tuple[PreparedQuery, Any]]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def get(self, text: str, namespaces=None) -> PreparedQuery:
        """Return the prepared form of ``text``, parsing only on a cache miss."""
        key = (text, id(namespaces) if namespaces is not None else 0)
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self.hits += 1
                self._entries.move_to_end(key)
                return entry[0]
        # Parse outside the lock: parsing is the expensive part and is safe
        # to race (worst case two threads parse the same text once each).
        prepared = PreparedQuery(text, namespaces)
        with self._lock:
            self.misses += 1
            self._entries[key] = (prepared, namespaces)
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_size:
                self._entries.popitem(last=False)
        return prepared

    def clear(self) -> None:
        """Drop every cached query and reset the hit/miss counters."""
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0

    def stats(self) -> Dict[str, int]:
        """Current ``size`` / ``hits`` / ``misses`` counters."""
        with self._lock:
            return {"size": len(self._entries), "hits": self.hits, "misses": self.misses}

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


#: Process-wide default cache behind :func:`prepare_cached`.
_DEFAULT_CACHE = PreparedQueryCache()


def prepared_cache() -> PreparedQueryCache:
    """The process-wide default :class:`PreparedQueryCache`."""
    return _DEFAULT_CACHE


def query(graph, query_text: str, init_bindings: Optional[Mapping[str, Any]] = None) -> Result:
    """Evaluate ``query_text`` against ``graph`` and return a :class:`Result`.

    One-shot queries also run through the planner: compilation is a cheap
    structural rewrite, and a badly-ordered ad-hoc query gains far more
    from join reordering than it pays for planning.
    """
    namespaces = getattr(graph, "namespace_manager", None)
    return PreparedQuery(query_text, namespaces).evaluate(graph, init_bindings)


def prepare(query_text: str, namespaces=None) -> PreparedQuery:
    """Parse ``query_text`` once and return a reusable :class:`PreparedQuery`."""
    return PreparedQuery(query_text, namespaces)


def prepare_cached(query_text: str, namespaces=None) -> PreparedQuery:
    """Like :func:`prepare`, but served from the process-wide LRU cache."""
    return _DEFAULT_CACHE.get(query_text, namespaces)
