"""Property-path evaluation over a graph.

``evaluate_path(graph, path, subject, obj)`` yields ``(subject, object)``
pairs connected by ``path``.  Either endpoint may be bound (a concrete
term) or ``None`` (free).  Transitive closures (``+`` / ``*``) are computed
with a breadth-first search from the bound side whenever one side is bound,
so queries like ``?cls rdfs:subClassOf+ feo:Characteristic`` stay linear in
the size of the reachable subgraph.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, Iterator, Optional, Set, Tuple

from ..rdf.terms import IRI
from .algebra import (
    AlternativePath,
    InversePath,
    ModifiedPath,
    PathExpr,
    PredicatePath,
    SequencePath,
)

__all__ = ["evaluate_path"]

Pair = Tuple[object, object]


def _predicate_pairs(graph, predicate: IRI, subject, obj) -> Iterator[Pair]:
    for s, _, o in graph.triples((subject, predicate, obj)):
        yield s, o


def _inverse_pairs(graph, path: PathExpr, subject, obj) -> Iterator[Pair]:
    for o, s in evaluate_path(graph, path, obj, subject):
        yield s, o


def _sequence_pairs(graph, steps, subject, obj) -> Iterator[Pair]:
    if len(steps) == 1:
        yield from evaluate_path(graph, steps[0], subject, obj)
        return
    first, rest = steps[0], steps[1:]
    seen: Set[Pair] = set()
    for s, mid in evaluate_path(graph, first, subject, None):
        for _, o in _sequence_pairs(graph, rest, mid, obj):
            pair = (s, o)
            if pair not in seen:
                seen.add(pair)
                yield pair


def _alternative_pairs(graph, options, subject, obj) -> Iterator[Pair]:
    seen: Set[Pair] = set()
    for option in options:
        for pair in evaluate_path(graph, option, subject, obj):
            if pair not in seen:
                seen.add(pair)
                yield pair


def _closure_from(graph, path: PathExpr, start, include_start: bool) -> Iterator[object]:
    """All nodes reachable from ``start`` via one-or-more (or zero-or-more) steps."""
    visited: Set[object] = set()
    if include_start:
        visited.add(start)
        yield start
    queue = deque([start])
    while queue:
        node = queue.popleft()
        for _, nxt in evaluate_path(graph, path, node, None):
            if nxt not in visited:
                visited.add(nxt)
                queue.append(nxt)
                yield nxt


def _closure_to(graph, path: PathExpr, end, include_end: bool) -> Iterator[object]:
    """All nodes that reach ``end`` via one-or-more (or zero-or-more) steps."""
    visited: Set[object] = set()
    if include_end:
        visited.add(end)
        yield end
    queue = deque([end])
    while queue:
        node = queue.popleft()
        for prev, _ in evaluate_path(graph, path, None, node):
            if prev not in visited:
                visited.add(prev)
                queue.append(prev)
                yield prev


def _all_nodes(graph) -> Iterable[object]:
    seen: Set[object] = set()
    for s, _, o in graph.triples((None, None, None)):
        if s not in seen:
            seen.add(s)
            yield s
        if o not in seen:
            seen.add(o)
            yield o


def _modified_pairs(graph, path: PathExpr, modifier: str, subject, obj) -> Iterator[Pair]:
    include_self = modifier in ("*", "?")
    if modifier == "?":
        seen: Set[Pair] = set()
        if include_self:
            if subject is not None and (obj is None or subject == obj):
                seen.add((subject, subject))
                yield subject, subject
            elif subject is None and obj is not None:
                seen.add((obj, obj))
                yield obj, obj
        for pair in evaluate_path(graph, path, subject, obj):
            if pair not in seen:
                seen.add(pair)
                yield pair
        return

    if subject is not None:
        for node in _closure_from(graph, path, subject, include_start=include_self):
            if obj is None or node == obj:
                yield subject, node
        return
    if obj is not None:
        for node in _closure_to(graph, path, obj, include_end=include_self):
            yield node, obj
        return
    # Both ends free: closure from every subject node.
    emitted: Set[Pair] = set()
    for start in list(_all_nodes(graph)):
        for node in _closure_from(graph, path, start, include_start=include_self):
            pair = (start, node)
            if pair not in emitted:
                emitted.add(pair)
                yield pair


def evaluate_path(graph, path, subject, obj) -> Iterator[Pair]:
    """Yield ``(s, o)`` pairs related by ``path`` (endpoints may be bound)."""
    if isinstance(path, IRI):
        yield from _predicate_pairs(graph, path, subject, obj)
    elif isinstance(path, PredicatePath):
        yield from _predicate_pairs(graph, path.iri, subject, obj)
    elif isinstance(path, InversePath):
        yield from _inverse_pairs(graph, path.path, subject, obj)
    elif isinstance(path, SequencePath):
        yield from _sequence_pairs(graph, list(path.steps), subject, obj)
    elif isinstance(path, AlternativePath):
        yield from _alternative_pairs(graph, list(path.options), subject, obj)
    elif isinstance(path, ModifiedPath):
        yield from _modified_pairs(graph, path.path, path.modifier, subject, obj)
    else:
        raise TypeError(f"Unsupported property path: {path!r}")
