"""Recursive-descent parser for the SPARQL subset.

Grammar coverage (sufficient for every query in the paper and the wider
benchmark suite):

* ``SELECT [DISTINCT] (?var | (expr AS ?var))+ | *``
* ``ASK`` and ``CONSTRUCT { template }``
* group graph patterns with nested groups, ``OPTIONAL``, ``UNION``,
  ``MINUS``, ``FILTER`` (including ``EXISTS`` / ``NOT EXISTS``), ``BIND``
  and ``VALUES``
* property paths ``^p``, ``p/q``, ``p|q``, ``p+``, ``p*``, ``p?``
* expressions with ``|| && ! = != < <= > >= IN NOT IN``, arithmetic and
  the common built-in functions
* solution modifiers ``GROUP BY``, ``HAVING``, ``ORDER BY``, ``LIMIT``,
  ``OFFSET``

Keywords are case-insensitive, as in the SPARQL recommendation.
"""

from __future__ import annotations

from typing import List, Optional, Tuple, Union

from ..rdf.namespace import NamespaceManager, RDF
from ..rdf.terms import BNode, IRI, Literal, Variable, XSD_BOOLEAN, XSD_DECIMAL, XSD_DOUBLE, XSD_INTEGER
from .algebra import (
    AggregateExpr,
    AlternativePath,
    AskQuery,
    BGP,
    BinaryExpr,
    BindPattern,
    ConstructQuery,
    ExistsExpr,
    Expression,
    FilterPattern,
    FunctionExpr,
    GroupPattern,
    InExpr,
    InversePath,
    MinusPattern,
    ModifiedPath,
    OptionalPattern,
    OrderCondition,
    PathExpr,
    PredicatePath,
    Projection,
    Query,
    SelectQuery,
    SequencePath,
    TermExpr,
    TriplePattern,
    UnaryExpr,
    UnionPattern,
    ValuesPattern,
    VariableExpr,
)
from .tokenizer import SparqlSyntaxError, Token, tokenize

__all__ = ["parse_query", "SparqlSyntaxError"]

RDF_TYPE = IRI(RDF.type)

_AGGREGATES = {"COUNT", "SUM", "MIN", "MAX", "AVG", "SAMPLE", "GROUP_CONCAT"}

_BUILTIN_FUNCTIONS = {
    "BOUND", "STR", "LANG", "LANGMATCHES", "DATATYPE", "IRI", "URI", "BNODE",
    "REGEX", "CONTAINS", "STRSTARTS", "STRENDS", "STRBEFORE", "STRAFTER",
    "STRLEN", "UCASE", "LCASE", "CONCAT", "REPLACE", "SUBSTR",
    "ABS", "CEIL", "FLOOR", "ROUND", "IF", "COALESCE", "SAMETERM",
    "ISIRI", "ISURI", "ISBLANK", "ISLITERAL", "ISNUMERIC",
    "ENCODE_FOR_URI", "YEAR", "MONTH", "DAY",
}

_STR_UNESCAPE = {
    "t": "\t",
    "n": "\n",
    "r": "\r",
    '"': '"',
    "'": "'",
    "\\": "\\",
}


def _unescape(text: str) -> str:
    out = []
    i = 0
    while i < len(text):
        char = text[i]
        if char == "\\" and i + 1 < len(text):
            out.append(_STR_UNESCAPE.get(text[i + 1], text[i + 1]))
            i += 2
        else:
            out.append(char)
            i += 1
    return "".join(out)


class _Parser:
    def __init__(self, tokens: List[Token], namespaces: Optional[NamespaceManager]) -> None:
        self.tokens = tokens
        self.index = 0
        self.namespaces = namespaces.copy() if namespaces else NamespaceManager()
        self.base: Optional[str] = None

    # ------------------------------------------------------------------
    # Token helpers
    # ------------------------------------------------------------------
    def peek(self, ahead: int = 0) -> Token:
        return self.tokens[min(self.index + ahead, len(self.tokens) - 1)]

    def next(self) -> Token:
        token = self.tokens[self.index]
        self.index += 1
        return token

    def error(self, message: str) -> SparqlSyntaxError:
        token = self.peek()
        return SparqlSyntaxError(f"Line {token.line}: {message} (near {token.value!r})")

    def expect_punct(self, char: str) -> None:
        token = self.next()
        if not (token.kind in ("PUNCT", "OP") and token.value == char):
            raise SparqlSyntaxError(
                f"Line {token.line}: expected {char!r}, found {token.value!r}"
            )

    def expect_keyword(self, *names: str) -> Token:
        token = self.next()
        if token.kind != "KEYWORD" or token.value not in names:
            raise SparqlSyntaxError(
                f"Line {token.line}: expected {'/'.join(names)}, found {token.value!r}"
            )
        return token

    def at_punct(self, char: str) -> bool:
        token = self.peek()
        return token.kind in ("PUNCT", "OP") and token.value == char

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------
    def parse(self) -> Query:
        self._parse_prologue()
        token = self.peek()
        if token.is_keyword("SELECT"):
            query = self._parse_select()
        elif token.is_keyword("ASK"):
            query = self._parse_ask()
        elif token.is_keyword("CONSTRUCT"):
            query = self._parse_construct()
        else:
            raise self.error("expected SELECT, ASK or CONSTRUCT")
        if self.peek().kind != "EOF":
            raise self.error("unexpected trailing content")
        return query

    def _parse_prologue(self) -> None:
        while True:
            token = self.peek()
            if token.is_keyword("PREFIX"):
                self.next()
                pname = self.next()
                if ":" not in pname.value:
                    raise self.error("malformed PREFIX declaration")
                prefix = pname.value.split(":", 1)[0]
                iri_token = self.next()
                if iri_token.kind != "IRIREF":
                    raise self.error("PREFIX requires an IRI")
                self.namespaces.bind(prefix, iri_token.value[1:-1])
            elif token.is_keyword("BASE"):
                self.next()
                iri_token = self.next()
                if iri_token.kind != "IRIREF":
                    raise self.error("BASE requires an IRI")
                self.base = iri_token.value[1:-1]
            else:
                return

    # ------------------------------------------------------------------
    # Query forms
    # ------------------------------------------------------------------
    def _parse_select(self) -> SelectQuery:
        self.expect_keyword("SELECT")
        distinct = False
        if self.peek().is_keyword("DISTINCT"):
            self.next()
            distinct = True
        elif self.peek().is_keyword("REDUCED"):
            self.next()

        projections: List[Projection] = []
        select_all = False
        if self.at_punct("*"):
            self.next()
            select_all = True
        else:
            while True:
                token = self.peek()
                if token.kind == "VAR":
                    self.next()
                    projections.append(Projection(Variable(token.value)))
                elif self.at_punct("("):
                    self.next()
                    expr = self._parse_expression()
                    self.expect_keyword("AS")
                    var_token = self.next()
                    if var_token.kind != "VAR":
                        raise self.error("expected a variable after AS")
                    self.expect_punct(")")
                    projections.append(Projection(Variable(var_token.value), expr))
                else:
                    break
            if not projections:
                raise self.error("SELECT requires at least one projection or *")

        if self.peek().is_keyword("WHERE"):
            self.next()
        where = self._parse_group_graph_pattern()
        query = SelectQuery(
            projections=projections,
            where=where,
            distinct=distinct,
            select_all=select_all,
        )
        self._parse_solution_modifiers(query)
        return query

    def _parse_ask(self) -> AskQuery:
        self.expect_keyword("ASK")
        if self.peek().is_keyword("WHERE"):
            self.next()
        return AskQuery(where=self._parse_group_graph_pattern())

    def _parse_construct(self) -> ConstructQuery:
        self.expect_keyword("CONSTRUCT")
        template = self._parse_construct_template()
        self.expect_keyword("WHERE")
        where = self._parse_group_graph_pattern()
        query = ConstructQuery(template=template, where=where)
        select_stub = SelectQuery(projections=[], where=where)
        self._parse_solution_modifiers(select_stub)
        query.limit = select_stub.limit
        query.offset = select_stub.offset
        return query

    def _parse_construct_template(self) -> List[TriplePattern]:
        self.expect_punct("{")
        triples: List[TriplePattern] = []
        while not self.at_punct("}"):
            triples.extend(self._parse_triples_same_subject(allow_paths=False))
            if self.at_punct("."):
                self.next()
        self.expect_punct("}")
        return triples

    def _parse_solution_modifiers(self, query: SelectQuery) -> None:
        while True:
            token = self.peek()
            if token.is_keyword("GROUP"):
                self.next()
                self.expect_keyword("BY")
                while True:
                    nxt = self.peek()
                    if nxt.kind == "VAR":
                        self.next()
                        query.group_by.append(VariableExpr(Variable(nxt.value)))
                    elif self.at_punct("("):
                        self.next()
                        query.group_by.append(self._parse_expression())
                        self.expect_punct(")")
                    else:
                        break
            elif token.is_keyword("HAVING"):
                self.next()
                self.expect_punct("(")
                query.having.append(self._parse_expression())
                self.expect_punct(")")
            elif token.is_keyword("ORDER"):
                self.next()
                self.expect_keyword("BY")
                while True:
                    nxt = self.peek()
                    if nxt.is_keyword("ASC", "DESC"):
                        self.next()
                        descending = nxt.value == "DESC"
                        self.expect_punct("(")
                        expr = self._parse_expression()
                        self.expect_punct(")")
                        query.order_by.append(OrderCondition(expr, descending))
                    elif nxt.kind == "VAR":
                        self.next()
                        query.order_by.append(
                            OrderCondition(VariableExpr(Variable(nxt.value)))
                        )
                    else:
                        break
            elif token.is_keyword("LIMIT"):
                self.next()
                value = self.next()
                if value.kind != "INTEGER":
                    raise self.error("LIMIT requires an integer")
                query.limit = int(value.value)
            elif token.is_keyword("OFFSET"):
                self.next()
                value = self.next()
                if value.kind != "INTEGER":
                    raise self.error("OFFSET requires an integer")
                query.offset = int(value.value)
            else:
                return

    # ------------------------------------------------------------------
    # Graph patterns
    # ------------------------------------------------------------------
    def _parse_group_graph_pattern(self) -> GroupPattern:
        self.expect_punct("{")
        group = GroupPattern()
        while not self.at_punct("}"):
            token = self.peek()
            if token.is_keyword("FILTER"):
                self.next()
                group.patterns.append(FilterPattern(self._parse_constraint()))
            elif token.is_keyword("OPTIONAL"):
                self.next()
                group.patterns.append(OptionalPattern(self._parse_group_graph_pattern()))
            elif token.is_keyword("MINUS"):
                self.next()
                group.patterns.append(MinusPattern(self._parse_group_graph_pattern()))
            elif token.is_keyword("BIND"):
                self.next()
                self.expect_punct("(")
                expr = self._parse_expression()
                self.expect_keyword("AS")
                var_token = self.next()
                if var_token.kind != "VAR":
                    raise self.error("BIND requires a variable after AS")
                self.expect_punct(")")
                group.patterns.append(BindPattern(expr, Variable(var_token.value)))
            elif token.is_keyword("VALUES"):
                self.next()
                group.patterns.append(self._parse_values())
            elif self.at_punct("{"):
                group.patterns.append(self._parse_group_or_union())
            elif self.at_punct("."):
                self.next()
            else:
                bgp = BGP()
                bgp.triples.extend(self._parse_triples_same_subject(allow_paths=True))
                while self.at_punct("."):
                    self.next()
                    nxt = self.peek()
                    if nxt.kind in ("VAR", "IRIREF", "PNAME", "BLANK") or self.at_punct("[") or self.at_punct("("):
                        bgp.triples.extend(self._parse_triples_same_subject(allow_paths=True))
                    else:
                        break
                group.patterns.append(bgp)
        self.expect_punct("}")
        return group

    def _parse_group_or_union(self) -> Union[GroupPattern, UnionPattern]:
        first = self._parse_group_graph_pattern()
        if not self.peek().is_keyword("UNION"):
            return first
        union = UnionPattern(alternatives=[first])
        while self.peek().is_keyword("UNION"):
            self.next()
            union.alternatives.append(self._parse_group_graph_pattern())
        return union

    def _parse_constraint(self) -> Expression:
        token = self.peek()
        if token.is_keyword("EXISTS"):
            self.next()
            return ExistsExpr(self._parse_group_graph_pattern(), negated=False)
        if token.is_keyword("NOT"):
            self.next()
            self.expect_keyword("EXISTS")
            return ExistsExpr(self._parse_group_graph_pattern(), negated=True)
        if self.at_punct("("):
            self.next()
            expr = self._parse_expression()
            self.expect_punct(")")
            return expr
        # Bare builtin call, e.g. FILTER regex(?x, "a")
        return self._parse_primary_expression()

    def _parse_values(self) -> ValuesPattern:
        values = ValuesPattern()
        token = self.peek()
        if token.kind == "VAR":
            self.next()
            values.variables.append(Variable(token.value))
            self.expect_punct("{")
            while not self.at_punct("}"):
                values.rows.append([self._parse_values_term()])
            self.expect_punct("}")
            return values
        self.expect_punct("(")
        while self.peek().kind == "VAR":
            values.variables.append(Variable(self.next().value))
        self.expect_punct(")")
        self.expect_punct("{")
        while self.at_punct("("):
            self.next()
            row = []
            while not self.at_punct(")"):
                row.append(self._parse_values_term())
            self.expect_punct(")")
            if len(row) != len(values.variables):
                raise self.error("VALUES row arity mismatch")
            values.rows.append(row)
        self.expect_punct("}")
        return values

    def _parse_values_term(self):
        token = self.peek()
        if token.is_keyword("UNDEF"):
            self.next()
            return None
        return self._parse_graph_term()

    # ------------------------------------------------------------------
    # Triples
    # ------------------------------------------------------------------
    def _parse_triples_same_subject(self, allow_paths: bool) -> List[TriplePattern]:
        triples: List[TriplePattern] = []
        subject = self._parse_term_or_blank(triples, allow_paths)
        self._parse_property_list(subject, triples, allow_paths)
        return triples

    def _parse_term_or_blank(self, triples: List[TriplePattern], allow_paths: bool):
        if self.at_punct("["):
            self.next()
            node = BNode()
            if not self.at_punct("]"):
                self._parse_property_list(node, triples, allow_paths)
            self.expect_punct("]")
            return node
        return self._parse_graph_term()

    def _parse_property_list(self, subject, triples: List[TriplePattern], allow_paths: bool) -> None:
        while True:
            predicate = self._parse_verb(allow_paths)
            while True:
                obj = self._parse_term_or_blank(triples, allow_paths)
                triples.append(TriplePattern(subject, predicate, obj))
                if self.at_punct(","):
                    self.next()
                    continue
                break
            if self.at_punct(";"):
                self.next()
                nxt = self.peek()
                if nxt.kind in ("PUNCT", "OP") and nxt.value in (".", "]", "}"):
                    return
                continue
            return

    def _parse_verb(self, allow_paths: bool):
        token = self.peek()
        if token.kind == "VAR":
            self.next()
            return Variable(token.value)
        if token.is_keyword("A"):
            self.next()
            if allow_paths:
                path = self._maybe_path_suffix(PredicatePath(RDF_TYPE))
                return path.iri if isinstance(path, PredicatePath) else path
            return RDF_TYPE
        if allow_paths:
            return self._parse_path()
        term = self._parse_graph_term()
        if not isinstance(term, IRI):
            raise self.error("predicate must be an IRI")
        return term

    # -- property paths ---------------------------------------------------
    def _parse_path(self) -> Union[IRI, PathExpr]:
        path = self._parse_path_alternative()
        if isinstance(path, PredicatePath):
            return path.iri
        return path

    def _parse_path_alternative(self) -> PathExpr:
        options = [self._parse_path_sequence()]
        while self.at_punct("|"):
            self.next()
            options.append(self._parse_path_sequence())
        if len(options) == 1:
            return options[0]
        return AlternativePath(tuple(options))

    def _parse_path_sequence(self) -> PathExpr:
        steps = [self._parse_path_elt_or_inverse()]
        while self.at_punct("/"):
            self.next()
            steps.append(self._parse_path_elt_or_inverse())
        if len(steps) == 1:
            return steps[0]
        return SequencePath(tuple(steps))

    def _parse_path_elt_or_inverse(self) -> PathExpr:
        if self.at_punct("^"):
            self.next()
            return InversePath(self._parse_path_elt())
        return self._parse_path_elt()

    def _parse_path_elt(self) -> PathExpr:
        primary = self._parse_path_primary()
        return self._maybe_path_suffix(primary)

    def _maybe_path_suffix(self, primary: PathExpr) -> PathExpr:
        token = self.peek()
        if token.kind == "OP" and token.value in ("+", "*"):
            self.next()
            return ModifiedPath(primary, token.value)
        if token.kind == "OP" and token.value == "?":  # pragma: no cover - '?' lexes as VAR
            self.next()
            return ModifiedPath(primary, "?")
        return primary

    def _parse_path_primary(self) -> PathExpr:
        token = self.peek()
        if self.at_punct("("):
            self.next()
            inner = self._parse_path_alternative()
            self.expect_punct(")")
            return inner
        if token.is_keyword("A"):
            self.next()
            return PredicatePath(RDF_TYPE)
        term = self._parse_graph_term()
        if not isinstance(term, IRI):
            raise self.error("property path element must be an IRI")
        return PredicatePath(term)

    # -- graph terms -------------------------------------------------------
    def _parse_graph_term(self):
        token = self.next()
        if token.kind == "VAR":
            return Variable(token.value)
        if token.kind == "IRIREF":
            iri = token.value[1:-1]
            if self.base and not iri.startswith(("http://", "https://", "urn:", "file:", "mailto:")):
                iri = self.base + iri
            return IRI(iri)
        if token.kind == "PNAME":
            try:
                return self.namespaces.expand(token.value)
            except KeyError as exc:
                raise SparqlSyntaxError(f"Line {token.line}: {exc}") from exc
        if token.kind == "BLANK":
            return BNode(token.value[2:])
        if token.kind in ("STRING", "SQ_STRING", "TRIPLE_STRING"):
            if token.kind == "TRIPLE_STRING":
                value = _unescape(token.value[3:-3])
            else:
                value = _unescape(token.value[1:-1])
            nxt = self.peek()
            if nxt.kind == "LANGTAG":
                self.next()
                return Literal(value, language=nxt.value[1:])
            if nxt.kind == "OP" and nxt.value == "^^":
                self.next()
                datatype = self._parse_graph_term()
                if not isinstance(datatype, IRI):
                    raise self.error("datatype must be an IRI")
                return Literal(value, datatype=datatype)
            return Literal(value)
        if token.kind == "INTEGER":
            return Literal(token.value, datatype=XSD_INTEGER)
        if token.kind == "DECIMAL":
            return Literal(token.value, datatype=XSD_DECIMAL)
        if token.kind == "DOUBLE":
            return Literal(token.value, datatype=XSD_DOUBLE)
        if token.kind == "KEYWORD" and token.value in ("TRUE", "FALSE"):
            return Literal(token.value.lower(), datatype=XSD_BOOLEAN)
        raise SparqlSyntaxError(
            f"Line {token.line}: expected an RDF term, found {token.value!r}"
        )

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------
    def _parse_expression(self) -> Expression:
        return self._parse_or_expression()

    def _parse_or_expression(self) -> Expression:
        left = self._parse_and_expression()
        while self.peek().kind == "OP" and self.peek().value == "||":
            self.next()
            right = self._parse_and_expression()
            left = BinaryExpr("||", left, right)
        return left

    def _parse_and_expression(self) -> Expression:
        left = self._parse_relational_expression()
        while self.peek().kind == "OP" and self.peek().value == "&&":
            self.next()
            right = self._parse_relational_expression()
            left = BinaryExpr("&&", left, right)
        return left

    def _parse_relational_expression(self) -> Expression:
        left = self._parse_additive_expression()
        token = self.peek()
        if token.kind == "OP" and token.value in ("=", "!=", "<", "<=", ">", ">="):
            self.next()
            right = self._parse_additive_expression()
            return BinaryExpr(token.value, left, right)
        if token.is_keyword("IN"):
            self.next()
            return InExpr(left, tuple(self._parse_expression_list()), negated=False)
        if token.is_keyword("NOT"):
            self.next()
            self.expect_keyword("IN")
            return InExpr(left, tuple(self._parse_expression_list()), negated=True)
        return left

    def _parse_expression_list(self) -> List[Expression]:
        self.expect_punct("(")
        items: List[Expression] = []
        if not self.at_punct(")"):
            items.append(self._parse_expression())
            while self.at_punct(","):
                self.next()
                items.append(self._parse_expression())
        self.expect_punct(")")
        return items

    def _parse_additive_expression(self) -> Expression:
        left = self._parse_multiplicative_expression()
        while self.peek().kind == "OP" and self.peek().value in ("+", "-"):
            operator = self.next().value
            right = self._parse_multiplicative_expression()
            left = BinaryExpr(operator, left, right)
        return left

    def _parse_multiplicative_expression(self) -> Expression:
        left = self._parse_unary_expression()
        while self.peek().kind in ("OP", "PUNCT") and self.peek().value in ("*", "/"):
            operator = self.next().value
            right = self._parse_unary_expression()
            left = BinaryExpr(operator, left, right)
        return left

    def _parse_unary_expression(self) -> Expression:
        token = self.peek()
        if token.kind == "OP" and token.value in ("!", "-", "+"):
            self.next()
            return UnaryExpr(token.value, self._parse_unary_expression())
        return self._parse_primary_expression()

    def _parse_primary_expression(self) -> Expression:
        token = self.peek()
        if self.at_punct("("):
            self.next()
            expr = self._parse_expression()
            self.expect_punct(")")
            return expr
        if token.kind == "VAR":
            self.next()
            return VariableExpr(Variable(token.value))
        if token.kind == "KEYWORD":
            if token.value in ("TRUE", "FALSE"):
                self.next()
                return TermExpr(Literal(token.value.lower(), datatype=XSD_BOOLEAN))
            if token.value in _AGGREGATES:
                return self._parse_aggregate()
            if token.value == "EXISTS":
                self.next()
                return ExistsExpr(self._parse_group_graph_pattern(), negated=False)
            if token.value == "NOT":
                self.next()
                self.expect_keyword("EXISTS")
                return ExistsExpr(self._parse_group_graph_pattern(), negated=True)
            if token.value in _BUILTIN_FUNCTIONS:
                self.next()
                args: Tuple[Expression, ...] = ()
                if self.at_punct("("):
                    args = tuple(self._parse_expression_list())
                return FunctionExpr(token.value, args)
        term = self._parse_graph_term()
        if isinstance(term, Variable):
            return VariableExpr(term)
        return TermExpr(term)

    def _parse_aggregate(self) -> AggregateExpr:
        name = self.next().value
        self.expect_punct("(")
        distinct = False
        if self.peek().is_keyword("DISTINCT"):
            self.next()
            distinct = True
        if self.at_punct("*"):
            self.next()
            self.expect_punct(")")
            return AggregateExpr(name, None, distinct)
        argument = self._parse_expression()
        separator = " "
        if self.at_punct(";"):
            self.next()
            self.expect_keyword("SEPARATOR")
            self.expect_punct("=")
            sep_token = self.next()
            if sep_token.kind not in ("STRING", "SQ_STRING"):
                raise self.error("SEPARATOR requires a string")
            separator = _unescape(sep_token.value[1:-1])
        self.expect_punct(")")
        return AggregateExpr(name, argument, distinct, separator)


def parse_query(text: str, namespaces: Optional[NamespaceManager] = None) -> Query:
    """Parse SPARQL ``text`` into an algebra tree.

    ``namespaces`` provides fallback prefix bindings (typically those of the
    graph being queried) so that queries can use well-known prefixes without
    repeating ``PREFIX`` declarations.
    """
    parser = _Parser(tokenize(text), namespaces)
    return parser.parse()
