"""Query result containers and text rendering.

``Result`` unifies the three query forms: SELECT results iterate as
:class:`ResultRow` objects (which behave like both tuples and mappings),
ASK results expose ``askAnswer`` and CONSTRUCT results expose ``graph``.
The text table renderer reproduces the style of the result tables printed
in the paper's listings.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional, Sequence

from ..rdf.graph import Graph
from ..rdf.terms import IRI, Literal, Variable

__all__ = ["ResultRow", "Result"]


class ResultRow:
    """One solution: behaves as a tuple (projection order) and as a mapping."""

    __slots__ = ("_variables", "_values")

    def __init__(self, variables: Sequence[Variable], values: Sequence[Any]) -> None:
        self._variables = list(variables)
        self._values = list(values)

    def __getitem__(self, key) -> Any:
        if isinstance(key, int):
            return self._values[key]
        name = key if isinstance(key, str) else str(key)
        name = name.lstrip("?$")
        for variable, value in zip(self._variables, self._values):
            if str(variable) == name:
                return value
        raise KeyError(key)

    def get(self, key, default=None) -> Any:
        try:
            return self[key]
        except KeyError:
            return default

    def __getattr__(self, name: str) -> Any:
        try:
            return self[name]
        except KeyError as exc:
            raise AttributeError(name) from exc

    def asdict(self) -> Dict[str, Any]:
        return {
            str(variable): value
            for variable, value in zip(self._variables, self._values)
            if value is not None
        }

    def __iter__(self) -> Iterator[Any]:
        return iter(self._values)

    def __len__(self) -> int:
        return len(self._values)

    def __eq__(self, other: Any) -> bool:
        if isinstance(other, ResultRow):
            return self._values == other._values and self._variables == other._variables
        if isinstance(other, (tuple, list)):
            return tuple(self._values) == tuple(other)
        return NotImplemented

    def __hash__(self) -> int:
        return hash(tuple(self._values))

    def __repr__(self) -> str:  # pragma: no cover
        pairs = ", ".join(f"?{v}={x}" for v, x in zip(self._variables, self._values))
        return f"ResultRow({pairs})"


class Result:
    """The outcome of a SPARQL query."""

    def __init__(
        self,
        type_: str,
        variables: Optional[List[Variable]] = None,
        rows: Optional[List[ResultRow]] = None,
        ask_answer: Optional[bool] = None,
        graph: Optional[Graph] = None,
    ) -> None:
        self.type = type_
        self.variables = variables or []
        self._rows = rows or []
        self.askAnswer = ask_answer
        self.graph = graph

    # -- sequence protocol (SELECT) --------------------------------------
    def __iter__(self) -> Iterator[ResultRow]:
        return iter(self._rows)

    def __len__(self) -> int:
        if self.type == "ASK":
            return 1
        if self.type == "CONSTRUCT" and self.graph is not None:
            return len(self.graph)
        return len(self._rows)

    def __bool__(self) -> bool:
        if self.type == "ASK":
            return bool(self.askAnswer)
        return len(self) > 0

    @property
    def bindings(self) -> List[Dict[str, Any]]:
        """SELECT solutions as plain dictionaries keyed by variable name."""
        return [row.asdict() for row in self._rows]

    def values(self, variable: str) -> List[Any]:
        """All bindings of one variable, in row order (unbound rows skipped)."""
        out = []
        for row in self._rows:
            value = row.get(variable)
            if value is not None:
                out.append(value)
        return out

    # -- rendering --------------------------------------------------------
    def _format_term(self, term: Any, namespace_manager=None) -> str:
        if term is None:
            return ""
        if isinstance(term, IRI) and namespace_manager is not None:
            compact = namespace_manager.qname(term)
            if compact:
                return compact
        if isinstance(term, Literal):
            return term.lexical
        return str(term)

    def to_table(self, namespace_manager=None) -> str:
        """Render SELECT results as an aligned text table (paper-listing style)."""
        if self.type == "ASK":
            return f"ASK -> {self.askAnswer}"
        if self.type == "CONSTRUCT":
            return self.graph.serialize("turtle") if self.graph is not None else ""
        headers = [f"?{v}" for v in self.variables]
        rows = [
            [self._format_term(row.get(str(v)), namespace_manager) for v in self.variables]
            for row in self._rows
        ]
        widths = [len(h) for h in headers]
        for row in rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines = [
            "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
            "  ".join("-" * widths[i] for i in range(len(headers))),
        ]
        for row in rows:
            lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Result type={self.type} rows={len(self._rows)}>"
