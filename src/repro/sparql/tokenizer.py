"""Tokenizer for the SPARQL subset used by the explanation engine.

SPARQL keywords are case-insensitive; the tokenizer normalises them to
upper case but preserves the original text for error messages.
"""

from __future__ import annotations

import re
from typing import List

__all__ = ["Token", "tokenize", "SparqlSyntaxError", "KEYWORDS"]


class SparqlSyntaxError(ValueError):
    """Raised when a query cannot be tokenized or parsed."""


KEYWORDS = {
    "SELECT", "DISTINCT", "REDUCED", "WHERE", "FILTER", "OPTIONAL", "UNION",
    "BIND", "AS", "VALUES", "UNDEF", "ASK", "CONSTRUCT", "DESCRIBE", "PREFIX",
    "BASE", "ORDER", "BY", "ASC", "DESC", "LIMIT", "OFFSET", "GROUP", "HAVING",
    "NOT", "EXISTS", "IN", "A", "GRAPH", "MINUS", "SERVICE",
    # builtin function keywords
    "BOUND", "STR", "LANG", "LANGMATCHES", "DATATYPE", "IRI", "URI", "BNODE",
    "REGEX", "CONTAINS", "STRSTARTS", "STRENDS", "STRBEFORE", "STRAFTER",
    "STRLEN", "UCASE", "LCASE", "CONCAT", "REPLACE", "SUBSTR", "ENCODE_FOR_URI",
    "ABS", "CEIL", "FLOOR", "ROUND", "RAND", "NOW", "YEAR", "MONTH", "DAY",
    "IF", "COALESCE", "SAMETERM", "ISIRI", "ISURI", "ISBLANK", "ISLITERAL",
    "ISNUMERIC", "COUNT", "SUM", "MIN", "MAX", "AVG", "SAMPLE", "GROUP_CONCAT",
    "SEPARATOR", "TRUE", "FALSE",
}

_TOKEN_RE = re.compile(
    r"""
    (?P<WS>\s+)
  | (?P<COMMENT>\#[^\n]*)
  | (?P<IRIREF><[^<>"{}|^`\\\x00-\x20]*>)
  | (?P<TRIPLE_STRING>\"\"\"(?:[^"\\]|\\.|"(?!""))*\"\"\")
  | (?P<STRING>"(?:[^"\\\n]|\\.)*")
  | (?P<SQ_STRING>'(?:[^'\\\n]|\\.)*')
  | (?P<VAR>[?$][A-Za-z_][A-Za-z0-9_]*)
  | (?P<DOUBLE>(?:\d+\.\d*|\.\d+|\d+)[eE][+-]?\d+)
  | (?P<DECIMAL>\d*\.\d+)
  | (?P<INTEGER>\d+)
  | (?P<BLANK>_:[A-Za-z0-9][A-Za-z0-9_.-]*)
  | (?P<PNAME>[A-Za-z][\w-]*:[A-Za-z0-9_](?:[\w.-]*[\w-])?|[A-Za-z][\w-]*:|:[A-Za-z0-9_](?:[\w.-]*[\w-])?)
  | (?P<NAME>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<LANGTAG>@[a-zA-Z]+(?:-[a-zA-Z0-9]+)*)
  | (?P<OP>\^\^|&&|\|\||!=|<=|>=|[=<>!+\-*/|^])
  | (?P<PUNCT>[{}().,;\[\]])
    """,
    re.VERBOSE,
)


class Token:
    """A single lexical token with position information."""

    __slots__ = ("kind", "value", "line")

    def __init__(self, kind: str, value: str, line: int) -> None:
        self.kind = kind
        self.value = value
        self.line = line

    def is_keyword(self, *names: str) -> bool:
        return self.kind == "KEYWORD" and self.value in names

    def __repr__(self) -> str:  # pragma: no cover
        return f"Token({self.kind}, {self.value!r}, line={self.line})"


def tokenize(text: str) -> List[Token]:
    """Split ``text`` into a list of :class:`Token`, ending with an EOF token."""
    tokens: List[Token] = []
    pos = 0
    line = 1
    length = len(text)
    while pos < length:
        match = _TOKEN_RE.match(text, pos)
        if not match:
            raise SparqlSyntaxError(f"Line {line}: unexpected character {text[pos]!r}")
        kind = match.lastgroup or "UNKNOWN"
        value = match.group(0)
        line += value.count("\n")
        pos = match.end()
        if kind in ("WS", "COMMENT"):
            continue
        if kind == "NAME":
            upper = value.upper()
            if upper in KEYWORDS:
                tokens.append(Token("KEYWORD", upper, line))
                continue
            # bare 'a' shorthand is handled as a keyword above ("A")
            tokens.append(Token("NAME", value, line))
            continue
        tokens.append(Token(kind, value, line))
    tokens.append(Token("EOF", "", line))
    return tokens
