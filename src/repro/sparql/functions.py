"""Evaluation of SPARQL expressions and built-in functions.

The evaluator follows the SPARQL semantics that matter in practice:

* an error (e.g. an unbound variable used in a comparison) makes a filter
  reject the solution rather than aborting the query — errors propagate as
  :class:`ExpressionError`;
* the effective boolean value (EBV) rules are applied for ``FILTER``;
* comparisons are value-based for numeric literals and term-based otherwise.
"""

from __future__ import annotations

import re
from decimal import Decimal
from typing import Any, Callable, Dict, Mapping, Optional

from ..rdf.terms import (
    BNode,
    IRI,
    Literal,
    Variable,
    XSD_BOOLEAN,
    XSD_DECIMAL,
    XSD_DOUBLE,
    XSD_INTEGER,
    XSD_STRING,
)
from .algebra import (
    AggregateExpr,
    BinaryExpr,
    ExistsExpr,
    Expression,
    FunctionExpr,
    InExpr,
    TermExpr,
    UnaryExpr,
    VariableExpr,
)

__all__ = ["ExpressionError", "evaluate_expression", "effective_boolean_value"]

TRUE = Literal("true", datatype=XSD_BOOLEAN)
FALSE = Literal("false", datatype=XSD_BOOLEAN)


class ExpressionError(Exception):
    """Raised when an expression cannot be evaluated (SPARQL 'error' value)."""


def _boolean(value: bool) -> Literal:
    return TRUE if value else FALSE


def effective_boolean_value(term: Any) -> bool:
    """Apply the SPARQL EBV rules to ``term``."""
    if isinstance(term, bool):
        return term
    if isinstance(term, Literal):
        if term.datatype == XSD_BOOLEAN:
            value = term.value
            if isinstance(value, bool):
                return value
            raise ExpressionError(f"invalid boolean literal {term.lexical!r}")
        if term.is_numeric():
            try:
                return float(term.value) != 0.0
            except (TypeError, ValueError) as exc:
                raise ExpressionError(str(exc)) from exc
        if term.datatype in (None, XSD_STRING) or term.language is not None:
            return len(term.lexical) > 0
        raise ExpressionError(f"no effective boolean value for {term!r}")
    if term is None:
        raise ExpressionError("unbound value has no effective boolean value")
    raise ExpressionError(f"no effective boolean value for {term!r}")


def _numeric_value(term: Any) -> float:
    if isinstance(term, Literal) and term.is_numeric():
        value = term.value
        if isinstance(value, Decimal):
            return float(value)
        if isinstance(value, (int, float)):
            return float(value)
    raise ExpressionError(f"not a numeric literal: {term!r}")


def _string_value(term: Any) -> str:
    if isinstance(term, Literal):
        return term.lexical
    if isinstance(term, IRI):
        return str(term)
    raise ExpressionError(f"not a string value: {term!r}")


def _compare(op: str, left: Any, right: Any) -> bool:
    if left is None or right is None:
        raise ExpressionError("comparison with unbound value")
    if isinstance(left, Literal) and isinstance(right, Literal):
        if left.is_numeric() and right.is_numeric():
            lv, rv = float(left.value), float(right.value)
        elif left.datatype == XSD_BOOLEAN and right.datatype == XSD_BOOLEAN:
            lv, rv = left.value, right.value
        else:
            lv, rv = left.lexical, right.lexical
            if op in ("=", "!="):
                if op == "=":
                    return left == right
                return left != right
    elif isinstance(left, (IRI, BNode)) and isinstance(right, (IRI, BNode)):
        if op == "=":
            return left == right
        if op == "!=":
            return left != right
        raise ExpressionError("ordering comparison on IRIs/blank nodes")
    else:
        # Mixed term kinds: only (in)equality is defined, and it is False/True.
        if op == "=":
            return False
        if op == "!=":
            return True
        raise ExpressionError("type error in comparison")
    if op == "=":
        return lv == rv
    if op == "!=":
        return lv != rv
    if op == "<":
        return lv < rv
    if op == "<=":
        return lv <= rv
    if op == ">":
        return lv > rv
    if op == ">=":
        return lv >= rv
    raise ExpressionError(f"unknown comparison operator {op!r}")


def _arithmetic(op: str, left: Any, right: Any) -> Literal:
    lv = _numeric_value(left)
    rv = _numeric_value(right)
    if op == "+":
        result = lv + rv
    elif op == "-":
        result = lv - rv
    elif op == "*":
        result = lv * rv
    elif op == "/":
        if rv == 0:
            raise ExpressionError("division by zero")
        result = lv / rv
    else:
        raise ExpressionError(f"unknown arithmetic operator {op!r}")
    if result == int(result) and op != "/":
        return Literal(int(result))
    return Literal(float(result), datatype=XSD_DOUBLE)


def _fn_regex(args) -> Literal:
    if len(args) < 2:
        raise ExpressionError("REGEX requires at least two arguments")
    text = _string_value(args[0])
    pattern = _string_value(args[1])
    flags = 0
    if len(args) > 2 and "i" in _string_value(args[2]):
        flags |= re.IGNORECASE
    return _boolean(re.search(pattern, text, flags) is not None)


def _fn_replace(args) -> Literal:
    if len(args) < 3:
        raise ExpressionError("REPLACE requires three arguments")
    text = _string_value(args[0])
    pattern = _string_value(args[1])
    replacement = _string_value(args[2])
    flags = 0
    if len(args) > 3 and "i" in _string_value(args[3]):
        flags |= re.IGNORECASE
    return Literal(re.sub(pattern, replacement, text, flags=flags))


def _fn_substr(args) -> Literal:
    text = _string_value(args[0])
    start = int(_numeric_value(args[1]))
    if len(args) > 2:
        length = int(_numeric_value(args[2]))
        return Literal(text[start - 1:start - 1 + length])
    return Literal(text[start - 1:])


def _fn_if(args, evaluator) -> Any:
    condition, then_branch, else_branch = args
    return then_branch if effective_boolean_value(condition) else else_branch


_SIMPLE_FUNCTIONS: Dict[str, Callable] = {}


def _register(name: str):
    def wrapper(func: Callable) -> Callable:
        _SIMPLE_FUNCTIONS[name] = func
        return func

    return wrapper


@_register("STR")
def _fn_str(args):
    term = args[0]
    if term is None:
        raise ExpressionError("STR of unbound value")
    if isinstance(term, Literal):
        return Literal(term.lexical)
    return Literal(str(term))


@_register("LANG")
def _fn_lang(args):
    term = args[0]
    if not isinstance(term, Literal):
        raise ExpressionError("LANG requires a literal")
    return Literal(term.language or "")


@_register("LANGMATCHES")
def _fn_langmatches(args):
    tag = _string_value(args[0]).lower()
    template = _string_value(args[1]).lower()
    if template == "*":
        return _boolean(bool(tag))
    return _boolean(tag == template or tag.startswith(template + "-"))


@_register("DATATYPE")
def _fn_datatype(args):
    term = args[0]
    if not isinstance(term, Literal):
        raise ExpressionError("DATATYPE requires a literal")
    if term.language is not None:
        from ..rdf.terms import RDF_LANGSTRING

        return RDF_LANGSTRING
    return term.datatype or XSD_STRING


@_register("IRI")
@_register("URI")
def _fn_iri(args):
    return IRI(_string_value(args[0]))


@_register("BNODE")
def _fn_bnode(args):
    return BNode()


@_register("BOUND")
def _fn_bound(args):
    return _boolean(args[0] is not None)


@_register("CONTAINS")
def _fn_contains(args):
    return _boolean(_string_value(args[1]) in _string_value(args[0]))


@_register("STRSTARTS")
def _fn_strstarts(args):
    return _boolean(_string_value(args[0]).startswith(_string_value(args[1])))


@_register("STRENDS")
def _fn_strends(args):
    return _boolean(_string_value(args[0]).endswith(_string_value(args[1])))


@_register("STRBEFORE")
def _fn_strbefore(args):
    text, sep = _string_value(args[0]), _string_value(args[1])
    index = text.find(sep)
    return Literal(text[:index] if index >= 0 else "")


@_register("STRAFTER")
def _fn_strafter(args):
    text, sep = _string_value(args[0]), _string_value(args[1])
    index = text.find(sep)
    return Literal(text[index + len(sep):] if index >= 0 else "")


@_register("STRLEN")
def _fn_strlen(args):
    return Literal(len(_string_value(args[0])))


@_register("UCASE")
def _fn_ucase(args):
    return Literal(_string_value(args[0]).upper())


@_register("LCASE")
def _fn_lcase(args):
    return Literal(_string_value(args[0]).lower())


@_register("CONCAT")
def _fn_concat(args):
    return Literal("".join(_string_value(a) for a in args))


@_register("ENCODE_FOR_URI")
def _fn_encode_for_uri(args):
    import urllib.parse

    return Literal(urllib.parse.quote(_string_value(args[0]), safe=""))


@_register("ABS")
def _fn_abs(args):
    value = _numeric_value(args[0])
    return Literal(abs(int(value)) if value == int(value) else abs(value))


@_register("CEIL")
def _fn_ceil(args):
    import math

    return Literal(int(math.ceil(_numeric_value(args[0]))))


@_register("FLOOR")
def _fn_floor(args):
    import math

    return Literal(int(math.floor(_numeric_value(args[0]))))


@_register("ROUND")
def _fn_round(args):
    return Literal(int(round(_numeric_value(args[0]))))


@_register("SAMETERM")
def _fn_sameterm(args):
    return _boolean(args[0] == args[1] and type(args[0]) is type(args[1]))


@_register("ISIRI")
@_register("ISURI")
def _fn_isiri(args):
    return _boolean(isinstance(args[0], IRI))


@_register("ISBLANK")
def _fn_isblank(args):
    return _boolean(isinstance(args[0], BNode))


@_register("ISLITERAL")
def _fn_isliteral(args):
    return _boolean(isinstance(args[0], Literal))


@_register("ISNUMERIC")
def _fn_isnumeric(args):
    return _boolean(isinstance(args[0], Literal) and args[0].is_numeric())


def evaluate_expression(
    expression: Expression,
    bindings: Mapping[Variable, Any],
    exists_evaluator: Optional[Callable[[Any, Mapping[Variable, Any]], bool]] = None,
) -> Any:
    """Evaluate ``expression`` under ``bindings`` and return an RDF term.

    ``exists_evaluator`` is injected by the query evaluator to handle
    ``EXISTS`` / ``NOT EXISTS`` (they require pattern matching against the
    dataset, which this module knows nothing about).
    """
    if isinstance(expression, VariableExpr):
        return bindings.get(expression.variable)
    if isinstance(expression, TermExpr):
        return expression.term
    if isinstance(expression, UnaryExpr):
        value = evaluate_expression(expression.operand, bindings, exists_evaluator)
        if expression.operator == "!":
            return _boolean(not effective_boolean_value(value))
        if expression.operator == "-":
            return Literal(-_numeric_value(value))
        return Literal(+_numeric_value(value))
    if isinstance(expression, BinaryExpr):
        op = expression.operator
        if op == "||":
            try:
                left = effective_boolean_value(
                    evaluate_expression(expression.left, bindings, exists_evaluator)
                )
            except ExpressionError:
                left = None
            try:
                right = effective_boolean_value(
                    evaluate_expression(expression.right, bindings, exists_evaluator)
                )
            except ExpressionError:
                right = None
            if left is True or right is True:
                return TRUE
            if left is None or right is None:
                raise ExpressionError("error in || operand")
            return FALSE
        if op == "&&":
            try:
                left = effective_boolean_value(
                    evaluate_expression(expression.left, bindings, exists_evaluator)
                )
            except ExpressionError:
                left = None
            try:
                right = effective_boolean_value(
                    evaluate_expression(expression.right, bindings, exists_evaluator)
                )
            except ExpressionError:
                right = None
            if left is False or right is False:
                return FALSE
            if left is None or right is None:
                raise ExpressionError("error in && operand")
            return TRUE
        left = evaluate_expression(expression.left, bindings, exists_evaluator)
        right = evaluate_expression(expression.right, bindings, exists_evaluator)
        if op in ("=", "!=", "<", "<=", ">", ">="):
            return _boolean(_compare(op, left, right))
        if op in ("+", "-", "*", "/"):
            return _arithmetic(op, left, right)
        raise ExpressionError(f"unknown operator {op!r}")
    if isinstance(expression, InExpr):
        value = evaluate_expression(expression.value, bindings, exists_evaluator)
        found = False
        for option in expression.options:
            candidate = evaluate_expression(option, bindings, exists_evaluator)
            try:
                if _compare("=", value, candidate):
                    found = True
                    break
            except ExpressionError:
                continue
        return _boolean(found != expression.negated)
    if isinstance(expression, ExistsExpr):
        if exists_evaluator is None:
            raise ExpressionError("EXISTS is not supported in this context")
        matched = exists_evaluator(expression.pattern, bindings)
        return _boolean(matched != expression.negated)
    if isinstance(expression, FunctionExpr):
        name = expression.name
        if name == "COALESCE":
            for arg in expression.args:
                try:
                    value = evaluate_expression(arg, bindings, exists_evaluator)
                except ExpressionError:
                    continue
                if value is not None:
                    return value
            raise ExpressionError("COALESCE: no valid argument")
        if name == "IF":
            if len(expression.args) != 3:
                raise ExpressionError("IF requires three arguments")
            condition = evaluate_expression(expression.args[0], bindings, exists_evaluator)
            branch = expression.args[1] if effective_boolean_value(condition) else expression.args[2]
            return evaluate_expression(branch, bindings, exists_evaluator)
        if name == "BOUND":
            # BOUND must not evaluate its argument (it may be unbound).
            arg = expression.args[0]
            if isinstance(arg, VariableExpr):
                return _boolean(bindings.get(arg.variable) is not None)
            raise ExpressionError("BOUND requires a variable")
        args = [
            evaluate_expression(arg, bindings, exists_evaluator) for arg in expression.args
        ]
        if name == "REGEX":
            return _fn_regex(args)
        if name == "REPLACE":
            return _fn_replace(args)
        if name == "SUBSTR":
            return _fn_substr(args)
        handler = _SIMPLE_FUNCTIONS.get(name)
        if handler is None:
            raise ExpressionError(f"unsupported function {name}")
        return handler(args)
    if isinstance(expression, AggregateExpr):
        raise ExpressionError("aggregate used outside of GROUP BY evaluation")
    raise ExpressionError(f"cannot evaluate expression {expression!r}")
