"""Command-line interface for the FEO reproduction.

Usage (after ``pip install -e .``)::

    python -m repro ask "Why should I eat Cauliflower Potato Curry?" --persona paper
    python -m repro recommend --persona pregnant_user --top-k 3 --explain
    python -m repro competency --extended
    python -m repro coverage
    python -m repro export --output feo_foodkg.ttl --reasoned
    python -m repro serve --requests requests.txt --stats

The CLI is a thin layer over :class:`repro.core.engine.ExplanationEngine`
and the evaluation harness; every command prints plain text so the tool is
usable in shells and CI logs without extra dependencies.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .core.competency import CompetencySuite
from .core.engine import ExplanationEngine
from .core.questions import QuestionParseError
from .evaluation import compute_coverage, run_evaluation
from .users.personas import PERSONAS, persona

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser (exposed separately for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Food Explanation Ontology (FEO) reproduction — explanation toolkit",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    ask = subparsers.add_parser("ask", help="answer a food-recommendation question")
    ask.add_argument("question", help='e.g. "Why should I eat Sushi?"')
    ask.add_argument("--persona", default="paper", choices=PERSONAS)
    ask.add_argument("--type", dest="explanation_type", default=None,
                     help="force an explanation type (contextual, contrastive, ...)")
    ask.add_argument("--show-evidence", action="store_true",
                     help="print the structured evidence items as well")
    ask.add_argument("--show-query", action="store_true",
                     help="print the SPARQL query used (when applicable)")

    recommend = subparsers.add_parser("recommend", help="run the Health Coach substitute")
    recommend.add_argument("--persona", default="paper", choices=PERSONAS)
    recommend.add_argument("--top-k", type=int, default=3)
    recommend.add_argument("--explain", action="store_true",
                           help="attach a contextual explanation to every recommendation")

    competency = subparsers.add_parser("competency",
                                       help="run the paper's competency questions")
    competency.add_argument("--extended", action="store_true",
                            help="also run the extended Table I coverage questions")
    competency.add_argument("--persona", default="paper", choices=PERSONAS)

    subparsers.add_parser("coverage", help="print the persona x explanation-type coverage matrix")

    evaluate = subparsers.add_parser("evaluate", help="run the full evaluation report")
    evaluate.add_argument("--skip-extended", action="store_true")

    export = subparsers.add_parser("export", help="export the ontology + knowledge graph")
    export.add_argument("--output", default="-", help="output file (default: stdout)")
    export.add_argument("--format", default="turtle", choices=["turtle", "ntriples"])
    export.add_argument("--reasoned", action="store_true",
                        help="export the materialised (post-reasoning) graph")

    serve = subparsers.add_parser(
        "serve",
        help="serve explanation requests (line stream, or HTTP with --port)",
        description="Without --port: answer one request per line, read from "
                    "--requests or stdin. A line is either a bare question "
                    "(answered as --persona) or 'persona: question' to address "
                    "another registered persona. Blank lines and lines starting "
                    "with '#' are skipped. With --port: run the concurrent "
                    "sharded HTTP/JSON server (POST /ask, /sessions, /update; "
                    "GET /stats, /healthz) until interrupted.",
    )
    serve.add_argument("--requests", default="-",
                       help="file with one request per line (default: stdin)")
    serve.add_argument("--persona", default="paper", choices=PERSONAS,
                       help="persona answering bare-question lines")
    serve.add_argument("--type", dest="explanation_type", default=None,
                       help="force an explanation type for every request")
    serve.add_argument("--stats", action="store_true",
                       help="print cache/session statistics after the stream ends")
    serve.add_argument("--port", type=int, default=None,
                       help="run the concurrent HTTP server on this port "
                            "(0 picks a free port) instead of the line stream")
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address for --port mode (default: 127.0.0.1)")
    serve.add_argument("--shards", type=int, default=4,
                       help="independent service shards in --port mode (default: 4)")
    serve.add_argument("--workers", type=int, default=2,
                       help="worker threads per shard in --port mode (default: 2)")
    serve.add_argument("--queue-size", type=int, default=64,
                       help="bounded per-shard request queue; a full queue sheds "
                            "load with a 503 backpressure error (default: 64)")
    serve.add_argument("--session-ttl", type=float, default=None,
                       help="evict sessions idle for this many seconds "
                            "(default: no TTL)")

    return parser


def _cmd_ask(engine: ExplanationEngine, args: argparse.Namespace) -> int:
    user, context = persona(args.persona)
    explanation = engine.ask(args.question, user, context,
                             explanation_type=args.explanation_type)
    print(f"[{explanation.explanation_type} explanation]")
    print(explanation.text)
    if args.show_evidence:
        print()
        for item in explanation.items:
            print("  -", item.describe())
    if args.show_query and explanation.query:
        print()
        print(explanation.query)
    return 0


def _cmd_recommend(engine: ExplanationEngine, args: argparse.Namespace) -> int:
    user, context = persona(args.persona)
    recommendations = engine.recommender.recommend(user, context, top_k=args.top_k)
    if not recommendations:
        print("No recipe satisfies this user's hard constraints.")
        return 1
    for recommendation in recommendations:
        print(f"#{recommendation.rank}  {recommendation.recipe}  (score {recommendation.score:.2f})")
        for reason in recommendation.reasons():
            print(f"     - {reason}")
        if args.explain:
            explanation = engine.contextual(recommendation.recipe, user, context)
            print(f"     => {explanation.text}")
    return 0


def _cmd_competency(engine: ExplanationEngine, args: argparse.Namespace) -> int:
    user, context = persona(args.persona)
    suite = CompetencySuite(engine, user, context)
    results = suite.run_all() if args.extended else suite.run()
    failures = 0
    for result in results:
        status = "PASS" if result.passed else "FAIL"
        if not result.passed:
            failures += 1
        print(f"[{status}] {result.question.identifier}: {result.question.question.text} "
              f"({len(result.explanation.items)} evidence items)")
        if result.missing:
            print(f"       missing: {[binding.subject for binding in result.missing]}")
    print(f"\n{len(results) - failures}/{len(results)} competency questions passed")
    return 0 if failures == 0 else 1


def _cmd_coverage(engine: ExplanationEngine, args: argparse.Namespace) -> int:
    matrix = compute_coverage(engine)
    print(matrix.to_table())
    print(f"\noverall coverage: {matrix.overall_coverage():.0%}")
    return 0


def _cmd_evaluate(engine: ExplanationEngine, args: argparse.Namespace) -> int:
    report = run_evaluation(engine, include_extended=not args.skip_extended)
    print(report.to_text())
    return 0 if report.all_passed else 1


def _cmd_export(engine: ExplanationEngine, args: argparse.Namespace) -> int:
    graph = engine.builder._base
    if args.reasoned:
        from .owl import Reasoner

        graph = Reasoner(graph.copy()).run()
    text = graph.serialize(args.format)
    if args.output == "-":
        print(text)
    else:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"wrote {len(graph)} triples to {args.output}", file=sys.stderr)
    return 0


def _parse_request_line(line: str, default_persona: str):
    """Split a ``serve`` input line into (persona, question); None to skip."""
    stripped = line.strip()
    if not stripped or stripped.startswith("#"):
        return None
    if ":" in stripped:
        head, _, tail = stripped.partition(":")
        if head.strip() in PERSONAS:
            return head.strip(), tail.strip()
    return default_persona, stripped


def _serve_http(engine: ExplanationEngine, args: argparse.Namespace) -> int:
    """The --port mode: the sharded, concurrent HTTP/JSON server."""
    from .service import ExplanationServer, ShardedExplanationService

    service = ShardedExplanationService(
        num_shards=args.shards,
        workers_per_shard=args.workers,
        queue_size=args.queue_size,
        session_ttl=args.session_ttl,
        engine=engine,
        default_persona=args.persona,
    ).warm()
    server = ExplanationServer(service, host=args.host, port=args.port)
    print(f"serving on {server.url} "
          f"({args.shards} shards x {args.workers} workers, "
          f"queue {args.queue_size}/shard)", file=sys.stderr)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.stop()
        if args.stats:
            print()
            print(service.stats().to_text())
    return 0


def _cmd_serve(engine: ExplanationEngine, args: argparse.Namespace) -> int:
    from .service import ExplanationRequest, ExplanationService

    if args.port is not None:
        return _serve_http(engine, args)

    service = ExplanationService(engine=engine).warm()
    if args.requests == "-":
        source, owns_source = sys.stdin, False
    else:
        try:
            source, owns_source = open(args.requests, "r", encoding="utf-8"), True
        except OSError as exc:
            print(f"error: cannot read requests file: {exc}", file=sys.stderr)
            return 2

    failures = 0
    sessions = {}
    try:
        # Stream line-by-line: each request is answered as it arrives, and a
        # malformed one degrades to an error line instead of aborting.
        for line in source:
            parsed = _parse_request_line(line, args.persona)
            if parsed is None:
                continue
            persona_key, question = parsed
            # One session per persona: follow-up questions share the profile.
            if persona_key not in sessions:
                sessions[persona_key] = service.open_persona_session(persona_key)
            request = ExplanationRequest(
                question=question,
                session_id=sessions[persona_key].session_id,
                explanation_type=args.explanation_type,
            )
            try:
                response = service.explain(request)
            except (QuestionParseError, KeyError) as exc:
                # KeyError covers unknown foods, conditions and --type values.
                failures += 1
                print(f"[error] {question}")
                print(f"  {exc.args[0] if exc.args else exc}")
                continue
            print(f"[{persona_key} | {response.explanation.explanation_type}"
                  f"{' | cached' if response.scenario_cache_hit else ''}] "
                  f"{question}")
            print(f"  {response.explanation.text}")
    finally:
        if owns_source:
            source.close()
    if args.stats:
        print()
        print(service.stats().to_text())
    return 0 if failures == 0 else 1


_COMMANDS = {
    "ask": _cmd_ask,
    "recommend": _cmd_recommend,
    "competency": _cmd_competency,
    "coverage": _cmd_coverage,
    "evaluate": _cmd_evaluate,
    "export": _cmd_export,
    "serve": _cmd_serve,
}


def main(argv: Optional[List[str]] = None, engine: Optional[ExplanationEngine] = None) -> int:
    """CLI entry point; ``engine`` can be injected to reuse a prebuilt one in tests."""
    parser = build_parser()
    args = parser.parse_args(argv)
    engine = engine if engine is not None else ExplanationEngine()
    handler = _COMMANDS[args.command]
    return handler(engine, args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
