"""Command-line interface for the FEO reproduction.

Usage (after ``pip install -e .``)::

    python -m repro ask "Why should I eat Cauliflower Potato Curry?" --persona paper
    python -m repro recommend --persona pregnant_user --top-k 3 --explain
    python -m repro competency --extended
    python -m repro coverage
    python -m repro export --output feo_foodkg.ttl --reasoned
    python -m repro serve --requests requests.txt --stats
    python -m repro snapshot save feo.snap --warm-persona paper
    python -m repro serve --snapshot feo.snap --port 8080

The CLI is a thin layer over :class:`repro.core.engine.ExplanationEngine`
and the evaluation harness; every command prints plain text so the tool is
usable in shells and CI logs without extra dependencies.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .core.competency import CompetencySuite
from .core.engine import ExplanationEngine
from .core.questions import parse_question
from .errors import RequestError
from .evaluation import compute_coverage, run_evaluation
from .users.personas import PERSONAS, persona

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser (exposed separately for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Food Explanation Ontology (FEO) reproduction — explanation toolkit",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    ask = subparsers.add_parser("ask", help="answer a food-recommendation question")
    ask.add_argument("question", help='e.g. "Why should I eat Sushi?"')
    ask.add_argument("--persona", default="paper", choices=PERSONAS)
    ask.add_argument("--type", dest="explanation_type", default=None,
                     help="force an explanation type (contextual, contrastive, ...)")
    ask.add_argument("--show-evidence", action="store_true",
                     help="print the structured evidence items as well")
    ask.add_argument("--show-query", action="store_true",
                     help="print the SPARQL query used (when applicable)")

    recommend = subparsers.add_parser("recommend", help="run the Health Coach substitute")
    recommend.add_argument("--persona", default="paper", choices=PERSONAS)
    recommend.add_argument("--top-k", type=int, default=3)
    recommend.add_argument("--explain", action="store_true",
                           help="attach a contextual explanation to every recommendation")

    competency = subparsers.add_parser("competency",
                                       help="run the paper's competency questions")
    competency.add_argument("--extended", action="store_true",
                            help="also run the extended Table I coverage questions")
    competency.add_argument("--persona", default="paper", choices=PERSONAS)

    subparsers.add_parser("coverage", help="print the persona x explanation-type coverage matrix")

    evaluate = subparsers.add_parser("evaluate", help="run the full evaluation report")
    evaluate.add_argument("--skip-extended", action="store_true")

    export = subparsers.add_parser("export", help="export the ontology + knowledge graph")
    export.add_argument("--output", default="-", help="output file (default: stdout)")
    export.add_argument("--format", default="turtle", choices=["turtle", "ntriples"])
    export.add_argument("--reasoned", action="store_true",
                        help="export the materialised (post-reasoning) graph")

    serve = subparsers.add_parser(
        "serve",
        help="serve explanation requests (line stream, or HTTP with --port)",
        description="Without --port: answer one request per line, read from "
                    "--requests or stdin. A line is either a bare question "
                    "(answered as --persona) or 'persona: question' to address "
                    "another registered persona. Blank lines and lines starting "
                    "with '#' are skipped. With --port: run the concurrent "
                    "sharded HTTP/JSON server (POST /ask, /sessions, /update; "
                    "GET /stats, /healthz) until interrupted.",
    )
    serve.add_argument("--requests", default="-",
                       help="file with one request per line (default: stdin)")
    serve.add_argument("--persona", default="paper", choices=PERSONAS,
                       help="persona answering bare-question lines")
    serve.add_argument("--type", dest="explanation_type", default=None,
                       help="force an explanation type for every request")
    serve.add_argument("--stats", action="store_true",
                       help="print cache/session statistics after the stream ends")
    serve.add_argument("--port", type=int, default=None,
                       help="run the concurrent HTTP server on this port "
                            "(0 picks a free port) instead of the line stream")
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address for --port mode (default: 127.0.0.1)")
    serve.add_argument("--shards", type=int, default=4,
                       help="independent service shards in --port mode (default: 4)")
    serve.add_argument("--workers", type=int, default=2,
                       help="worker threads per shard in --port mode (default: 2)")
    serve.add_argument("--queue-size", type=int, default=64,
                       help="bounded per-shard request queue; a full queue sheds "
                            "load with a 503 backpressure error (default: 64)")
    serve.add_argument("--session-ttl", type=float, default=None,
                       help="evict sessions idle for this many seconds "
                            "(default: no TTL)")
    serve.add_argument("--request-timeout", type=float, default=None,
                       metavar="SECONDS",
                       help="per-request deadline in --port mode: a miss "
                            "returns a typed 504 and queued-but-expired work "
                            "is skipped (default: unbounded; a request's own "
                            "'timeout' field overrides)")
    serve.add_argument("--drain-timeout", type=float, default=None,
                       metavar="SECONDS",
                       help="graceful-drain bound on shutdown in --port mode: "
                            "in-flight work gets this long, the rest is "
                            "cancelled with a typed 503 (default: drain "
                            "fully)")
    serve.add_argument("--snapshot", default=None, metavar="PATH",
                       help="cold-start from a snapshot file (see 'repro "
                            "snapshot save') instead of rebuilding the "
                            "ontology + knowledge graph from source")
    serve.add_argument("--reasoner-workers", type=int, default=1,
                       help="process-pool size for bulk scenario warm-up in "
                            "--port mode: warm requests grouped per shard "
                            "are closed in one pool pass (default: 1, "
                            "serial)")

    close = subparsers.add_parser(
        "close",
        help="materialise the knowledge-graph closure and print its stats",
        description="Runs the OWL reasoner to a fixed point over the "
                    "combined ontology + knowledge graph and prints the "
                    "reasoning report. With --workers > 1 the fixpoint "
                    "rounds are partitioned across a process pool "
                    "(Reasoner.run_parallel); the result is bit-identical "
                    "to the single-core run.",
    )
    close.add_argument("--workers", type=int, default=1,
                       help="reasoner process-pool size (default: 1 = the "
                            "single-core differential oracle)")
    close.add_argument("--threshold", type=int, default=None, metavar="TRIPLES",
                       help="minimum per-round delta size before a round is "
                            "partitioned across the pool; smaller rounds run "
                            "serially on the coordinator (default: 512)")
    close.add_argument("--stats", action="store_true",
                       help="also print the process-wide parallel-reasoner "
                            "counters")

    snapshot = subparsers.add_parser(
        "snapshot",
        help="save/load the persistent knowledge-graph snapshot store",
        description="'save' serialises the engine's term dictionary, encoded "
                    "triples, indexes and (optionally pre-warmed) reasoning "
                    "closures into one binary snapshot file; 'load' verifies "
                    "a snapshot and prints its stats. A saved snapshot lets "
                    "'serve --snapshot' cold-start shards without re-parsing "
                    "turtle or re-running the reasoner.",
    )
    snapshot_sub = snapshot.add_subparsers(dest="snapshot_command", required=True)
    snap_save = snapshot_sub.add_parser("save", help="write a snapshot file")
    snap_save.add_argument("output", help="snapshot file to write")
    snap_save.add_argument("--warm-persona", action="append", default=[],
                           choices=PERSONAS, metavar="PERSONA",
                           help="pre-materialise closures for this persona "
                                "(repeatable; default: paper when "
                                "--warm-question is given)")
    snap_save.add_argument("--warm-question", action="append", default=[],
                           metavar="QUESTION",
                           help="question to warm each persona with "
                                "(repeatable; default: a canonical 'why' "
                                "question when --warm-persona is given)")
    snap_load = snapshot_sub.add_parser(
        "load", help="verify a snapshot file and print its stats")
    snap_load.add_argument("input", help="snapshot file to read")

    return parser


def _cmd_ask(engine: ExplanationEngine, args: argparse.Namespace) -> int:
    user, context = persona(args.persona)
    explanation = engine.ask(args.question, user, context,
                             explanation_type=args.explanation_type)
    print(f"[{explanation.explanation_type} explanation]")
    print(explanation.text)
    if args.show_evidence:
        print()
        for item in explanation.items:
            print("  -", item.describe())
    if args.show_query and explanation.query:
        print()
        print(explanation.query)
    return 0


def _cmd_recommend(engine: ExplanationEngine, args: argparse.Namespace) -> int:
    user, context = persona(args.persona)
    recommendations = engine.recommender.recommend(user, context, top_k=args.top_k)
    if not recommendations:
        print("No recipe satisfies this user's hard constraints.")
        return 1
    for recommendation in recommendations:
        print(f"#{recommendation.rank}  {recommendation.recipe}  (score {recommendation.score:.2f})")
        for reason in recommendation.reasons():
            print(f"     - {reason}")
        if args.explain:
            explanation = engine.contextual(recommendation.recipe, user, context)
            print(f"     => {explanation.text}")
    return 0


def _cmd_competency(engine: ExplanationEngine, args: argparse.Namespace) -> int:
    user, context = persona(args.persona)
    suite = CompetencySuite(engine, user, context)
    results = suite.run_all() if args.extended else suite.run()
    failures = 0
    for result in results:
        status = "PASS" if result.passed else "FAIL"
        if not result.passed:
            failures += 1
        print(f"[{status}] {result.question.identifier}: {result.question.question.text} "
              f"({len(result.explanation.items)} evidence items)")
        if result.missing:
            print(f"       missing: {[binding.subject for binding in result.missing]}")
    print(f"\n{len(results) - failures}/{len(results)} competency questions passed")
    return 0 if failures == 0 else 1


def _cmd_coverage(engine: ExplanationEngine, args: argparse.Namespace) -> int:
    matrix = compute_coverage(engine)
    print(matrix.to_table())
    print(f"\noverall coverage: {matrix.overall_coverage():.0%}")
    return 0


def _cmd_evaluate(engine: ExplanationEngine, args: argparse.Namespace) -> int:
    report = run_evaluation(engine, include_extended=not args.skip_extended)
    print(report.to_text())
    return 0 if report.all_passed else 1


def _cmd_export(engine: ExplanationEngine, args: argparse.Namespace) -> int:
    graph = engine.builder._base
    if args.reasoned:
        from .owl import Reasoner

        graph = Reasoner(graph.copy()).run()
    text = graph.serialize(args.format)
    if args.output == "-":
        print(text)
    else:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"wrote {len(graph)} triples to {args.output}", file=sys.stderr)
    return 0


#: Question used by ``snapshot save --warm-persona`` when no
#: ``--warm-question`` is given: a canonical Table-I "why" question that
#: every persona can answer from the core catalog.
_DEFAULT_WARM_QUESTION = "Why should I eat Sushi?"


def _cmd_snapshot(engine: Optional[ExplanationEngine], args: argparse.Namespace) -> int:
    from .storage import ClosureEntry, SnapshotError, load_snapshot, save_snapshot

    if args.snapshot_command == "load":
        try:
            loaded = load_snapshot(args.input)
        except (OSError, SnapshotError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        stats = loaded.stats
        labelled = sum(1 for entry in loaded.closures if entry.label is not None)
        print(f"snapshot OK: {args.input}")
        print(f"  terms:      {stats['terms']}")
        print(f"  triples:    {stats['triples']}")
        print(f"  closures:   {stats['closures']} ({labelled} labelled)")
        print(f"  namespaces: {len(list(loaded.graph.namespaces()))}")
        print(f"  bytes:      {stats['bytes']}")
        return 0

    # save: build (or reuse) the engine, optionally pre-warm closures so
    # `serve --snapshot` shards answer first-touch requests from cache.
    engine = engine if engine is not None else ExplanationEngine()
    builder = engine.builder
    warm_personas = list(args.warm_persona)
    warm_questions = list(args.warm_question)
    if warm_questions and not warm_personas:
        warm_personas = ["paper"]
    if warm_personas and not warm_questions:
        warm_questions = [_DEFAULT_WARM_QUESTION]
    labels = {}
    for persona_key in warm_personas:
        user, context = persona(persona_key)
        for question_text in warm_questions:
            scenario = engine.build_scenario(
                parse_question(question_text), user, context)
            # The closure cache keys entries by the asserted graph's
            # fingerprint; remember which persona each warm entry serves
            # so the sharded service can seed it on that persona's shard.
            labels[scenario.asserted.fingerprint()] = persona_key
    closures = []
    cache = builder.closure_cache
    if cache is not None:
        closures = [
            ClosureEntry(asserted=asserted, closure=closure,
                         post_added=post_added,
                         label=labels.get(asserted.fingerprint()))
            for asserted, closure, post_added in cache.export_entries()
        ]
    try:
        stats = save_snapshot(args.output, builder._base, closures=closures)
    except (OSError, SnapshotError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(f"wrote {args.output}: {stats['terms']} terms, "
          f"{stats['triples']} triples, {stats['closures']} warm closures, "
          f"{stats['bytes']} bytes", file=sys.stderr)
    return 0


def _cmd_close(engine: ExplanationEngine, args: argparse.Namespace) -> int:
    """Materialise the base KG closure, optionally across a process pool."""
    from .owl import Reasoner, parallel_stats

    base = engine.builder._base
    reasoner = Reasoner(base.copy())
    if args.workers > 1:
        closure = reasoner.run_parallel(workers=args.workers,
                                        threshold=args.threshold)
    else:
        closure = reasoner.run()
    report = reasoner.report
    print(f"closure: {len(closure)} triples "
          f"({report.input_triples} asserted, "
          f"{report.inferred_triples} inferred)")
    print(f"iterations: {report.iterations}  "
          f"elapsed: {report.elapsed_seconds:.3f}s  "
          f"workers: {args.workers}")
    for rule in sorted(report.rule_firings):
        print(f"  {rule}: {report.rule_firings[rule]}")
    if args.stats:
        print()
        for key, value in parallel_stats().items():
            print(f"{key}: {value}")
    return 0


def _parse_request_line(line: str, default_persona: str):
    """Split a ``serve`` input line into (persona, question); None to skip."""
    stripped = line.strip()
    if not stripped or stripped.startswith("#"):
        return None
    if ":" in stripped:
        head, _, tail = stripped.partition(":")
        if head.strip() in PERSONAS:
            return head.strip(), tail.strip()
    return default_persona, stripped


def _serve_http(engine: Optional[ExplanationEngine], args: argparse.Namespace) -> int:
    """The --port mode: the sharded, concurrent HTTP/JSON server."""
    from .service import ExplanationServer, ShardedExplanationService
    from .testing import faults

    # Chaos knobs: REPRO_FAULTS="site=action@trigger[:ms];..." plus
    # REPRO_FAULT_SEED activate the deterministic fault injector for this
    # process (zero overhead when unset).
    injector = faults.install_from_env()
    if injector is not None:
        print(f"fault injection active: {len(injector.faults)} scheduled "
              f"faults (seed {injector.seed})", file=sys.stderr)
    common = dict(
        num_shards=args.shards,
        workers_per_shard=args.workers,
        queue_size=args.queue_size,
        session_ttl=args.session_ttl,
        default_persona=args.persona,
        request_timeout=args.request_timeout,
        drain_timeout=args.drain_timeout,
        reasoner_workers=args.reasoner_workers,
    )
    if args.snapshot is not None:
        # Zero-warm-up cold start: shards rebuild the graph family from
        # the snapshot file and seed any persisted closures instead of
        # re-parsing turtle and re-running the reasoner.
        service = ShardedExplanationService(snapshot=args.snapshot, **common).warm()
    else:
        service = ShardedExplanationService(engine=engine, **common).warm()
    server = ExplanationServer(service, host=args.host, port=args.port,
                               drain_timeout=args.drain_timeout)
    print(f"serving on {server.url} "
          f"({args.shards} shards x {args.workers} workers, "
          f"queue {args.queue_size}/shard)", file=sys.stderr)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.stop()
        if args.stats:
            print()
            print(service.stats().to_text())
    return 0


def _cmd_serve(engine: Optional[ExplanationEngine], args: argparse.Namespace) -> int:
    from .service import ExplanationRequest, ExplanationService

    if args.port is not None:
        return _serve_http(engine, args)

    if engine is None and args.snapshot is not None:
        # Line-stream mode can cold-start from a snapshot too: rebuild the
        # base graph family and seed every persisted closure into the
        # builder's cache (a single service has no shard routing).
        from .core.scenario import ScenarioBuilder
        from .foodkg import build_core_catalog
        from .storage import SnapshotError, load_snapshot

        try:
            loaded = load_snapshot(args.snapshot)
        except (OSError, SnapshotError) as exc:
            print(f"error: cannot load snapshot: {exc}", file=sys.stderr)
            return 2
        builder = ScenarioBuilder(build_core_catalog(), base_graph=loaded.graph)
        if builder.closure_cache is not None:
            for entry in loaded.closures:
                builder.closure_cache.install(entry.asserted, entry.closure,
                                              entry.post_added)
        engine = ExplanationEngine(builder=builder)

    service = ExplanationService(engine=engine).warm()
    if args.requests == "-":
        source, owns_source = sys.stdin, False
    else:
        try:
            source, owns_source = open(args.requests, "r", encoding="utf-8"), True
        except OSError as exc:
            print(f"error: cannot read requests file: {exc}", file=sys.stderr)
            return 2

    failures = 0
    sessions = {}
    try:
        # Stream line-by-line: each request is answered as it arrives, and a
        # malformed one degrades to an error line instead of aborting.
        for line in source:
            parsed = _parse_request_line(line, args.persona)
            if parsed is None:
                continue
            persona_key, question = parsed
            # One session per persona: follow-up questions share the profile.
            if persona_key not in sessions:
                sessions[persona_key] = service.open_persona_session(persona_key)
            request = ExplanationRequest(
                question=question,
                session_id=sessions[persona_key].session_id,
                explanation_type=args.explanation_type,
            )
            try:
                response = service.explain(request)
            except RequestError as exc:
                # The typed request-error family covers unparseable
                # questions, unknown foods, conditions and --type values.
                failures += 1
                print(f"[error] {question}")
                print(f"  {exc.args[0] if exc.args else exc}")
                continue
            print(f"[{persona_key} | {response.explanation.explanation_type}"
                  f"{' | cached' if response.scenario_cache_hit else ''}] "
                  f"{question}")
            print(f"  {response.explanation.text}")
    finally:
        if owns_source:
            source.close()
    if args.stats:
        print()
        print(service.stats().to_text())
    return 0 if failures == 0 else 1


_COMMANDS = {
    "ask": _cmd_ask,
    "recommend": _cmd_recommend,
    "competency": _cmd_competency,
    "coverage": _cmd_coverage,
    "evaluate": _cmd_evaluate,
    "export": _cmd_export,
    "serve": _cmd_serve,
    "snapshot": _cmd_snapshot,
    "close": _cmd_close,
}


def _needs_eager_engine(args: argparse.Namespace) -> bool:
    """Whether ``main`` should build the default engine up front.

    ``snapshot load`` never needs one, and snapshot-backed serving (and
    ``snapshot save``, which may reuse an injected engine) builds lazily —
    eager construction would re-parse the whole ontology just to throw it
    away.
    """
    if args.command == "snapshot":
        return False
    if args.command == "serve" and args.snapshot is not None:
        return False
    return True


def main(argv: Optional[List[str]] = None, engine: Optional[ExplanationEngine] = None) -> int:
    """CLI entry point; ``engine`` can be injected to reuse a prebuilt one in tests."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if engine is None and _needs_eager_engine(args):
        engine = ExplanationEngine()
    handler = _COMMANDS[args.command]
    return handler(engine, args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
