"""The explanation service: a high-throughput, multi-user engine facade.

:class:`ExplanationService` is the serving layer the paper's interactive
health-coach scenario implies: one ontology + knowledge graph, many users,
many questions.  It wraps one :class:`~repro.core.engine.ExplanationEngine`
and layers the caches that make repeated traffic cheap:

* the **prepared-query cache** (:func:`repro.sparql.prepare_cached`):
  competency SPARQL templates are parsed — and their cost-based execution
  plans compiled (:mod:`repro.sparql.planner`) — once per process;
* the **closure cache** (:class:`repro.owl.MaterializationCache`, held by
  the engine's scenario builder): a repeated request skips OWL
  re-materialisation because its assembled graph has the same fingerprint;
* a **scenario cache** (this module): a repeated ``(user, context,
  question)`` skips assembly *and* annotation entirely, and a batch that
  asks several explanation types about one question builds its scenario
  once.

Sessions (:class:`repro.users.SessionRegistry`) give concurrent users
stable identifiers so follow-up questions ride the same profile/context
without re-sending them.

Typical use::

    service = ExplanationService()
    session = service.open_session(*persona("paper"))
    response = service.ask("Why should I eat Sushi?", session_id=session.session_id)
    responses = service.explain_batch([ExplanationRequest(question=q, persona="paper")
                                       for q in questions])
"""

from __future__ import annotations

import math
import threading
import time
from collections import OrderedDict, deque
from typing import Deque, Dict, List, Optional, Sequence, Tuple

from ..core.engine import ExplanationEngine
from ..core.questions import Question, parse_question
from ..errors import RequestError
from ..core.scenario import Scenario
from ..foodkg.schema import FoodCatalog
from ..owl import parallel_stats
from ..sparql import planner_stats, prepared_cache
from ..testing import faults
from ..users.context import SystemContext
from ..users.personas import persona as persona_lookup
from ..users.profile import UserProfile
from ..users.sessions import SessionRegistry, UserSession
from .api import BackpressureError, ExplanationRequest, ExplanationResponse, ServiceStats

__all__ = ["ExplanationService", "percentile"]

#: Cache key identifying a scenario: all components are frozen dataclasses.
ScenarioKey = Tuple[Question, UserProfile, SystemContext]


def percentile(samples: Sequence[float], q: float) -> float:
    """The ``q``-th percentile (0..1) of ``samples`` by rank (0.0 if empty)."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = min(len(ordered) - 1, max(0, math.ceil(q * len(ordered)) - 1))
    return ordered[rank]


class ExplanationService:
    """Serves explanation requests for many users against one shared engine."""

    def __init__(
        self,
        engine: Optional[ExplanationEngine] = None,
        catalog: Optional[FoodCatalog] = None,
        max_cached_scenarios: int = 64,
        registry: Optional[SessionRegistry] = None,
        default_persona: str = "paper",
        snapshot_reads: bool = True,
        max_pending: Optional[int] = None,
        latency_window: int = 2048,
    ) -> None:
        if max_cached_scenarios <= 0:
            raise ValueError("max_cached_scenarios must be positive")
        if max_pending is not None and max_pending <= 0:
            raise ValueError("max_pending must be positive (or None for unbounded)")
        self._engine = engine
        self._catalog = catalog
        self._engine_lock = threading.Lock()
        self.registry = registry if registry is not None else SessionRegistry()
        self.default_persona = default_persona
        self._scenarios: "OrderedDict[ScenarioKey, Scenario]" = OrderedDict()
        self._scenario_lock = threading.Lock()
        # Serialises update_scenario's fetch-grow-publish sequence so two
        # concurrent updates to one session cannot drop each other's facts;
        # plain serving never takes this lock.
        self._update_lock = threading.Lock()
        self.max_cached_scenarios = max_cached_scenarios
        #: Serve explanations against a copy-on-write snapshot of the cached
        #: scenario, so concurrent readers are isolated from any later write
        #: to the graphs they are querying (see :meth:`Scenario.snapshot`).
        self.snapshot_reads = snapshot_reads
        #: Admission control: with ``max_pending`` set, at most that many
        #: requests may be in flight at once — the next one is shed with a
        #: typed :class:`BackpressureError` instead of queueing behind them.
        self.max_pending = max_pending
        self._inflight = 0
        self._admission_lock = threading.Lock()
        # Guards the latency window: list(deque) raises if a concurrent
        # append mutates the deque mid-iteration, so both the record and
        # the snapshot take this lock.
        self._latency_lock = threading.Lock()
        self._latencies: Deque[float] = deque(maxlen=latency_window)
        self.requests_served = 0
        self.requests_rejected = 0
        self.scenario_cache_hits = 0
        self.scenario_cache_misses = 0
        self.scenario_updates = 0

    # ------------------------------------------------------------------
    # Engine access / warm-up
    # ------------------------------------------------------------------
    @property
    def engine(self) -> ExplanationEngine:
        """The shared engine, built lazily on first use."""
        if self._engine is None:
            with self._engine_lock:
                if self._engine is None:
                    self._engine = ExplanationEngine(catalog=self._catalog)
        return self._engine

    def warm(self) -> "ExplanationService":
        """Eagerly build the engine and pre-parse the competency templates.

        Calling this before accepting traffic moves the one-off costs
        (ontology build, knowledge-graph load, query parsing) out of the
        first request's latency.
        """
        from ..core.queries import (
            contextual_template,
            contrastive_template,
            counterfactual_template,
        )
        from ..sparql import prepare_cached

        _ = self.engine
        prepare_cached(contextual_template(match_ecosystem=True))
        prepare_cached(contrastive_template())
        prepare_cached(counterfactual_template())
        return self

    def prewarm_scenario(self, question, user: UserProfile,
                         context: SystemContext) -> bool:
        """Build (and cache) the scenario one expected request will need.

        Cold-started processes answer their first request per tenant
        30-40 ms slower than steady state even with the closure seeded
        from a snapshot: the scenario graph assembly, fact annotation and
        cache insertion still run on the request path, and under a
        concurrent opening burst those first touches convoy behind each
        other.  Driving the expected ``(question, user, context)`` triples
        through this method before admitting traffic moves that work into
        the cold-start window.  Returns ``True`` if the scenario was
        already cached.
        """
        parsed = question if isinstance(question, Question) else parse_question(question)
        _, hit = self._scenario(parsed, user, context)
        return hit

    def prewarm_many(self, specs: Sequence[Tuple], workers: int = 1) -> int:
        """Bulk :meth:`prewarm_scenario`: close every missing scenario in
        one reasoner pass.

        ``specs`` is a sequence of ``(question, user, context)`` triples
        (questions may be strings).  Scenarios already in the LRU are
        skipped; the rest are assembled and materialised together via
        :meth:`repro.core.scenario.ScenarioBuilder.build_many`, which with
        ``workers > 1`` closes them in a single process-pool pass instead
        of one serial closure per tenant.  Returns the number of scenarios
        actually built.
        """
        parsed = [
            ((q if isinstance(q, Question) else parse_question(q)), u, c)
            for (q, u, c) in specs
        ]
        with self._scenario_lock:
            missing = [
                (q, u, c) for (q, u, c) in parsed
                if (q, u, c) not in self._scenarios
            ]
        if not missing:
            return 0
        scenarios = self.engine.builder.build_many(missing, workers=workers)
        with self._scenario_lock:
            for (q, u, c), scenario in zip(missing, scenarios):
                key: ScenarioKey = (q, u, c)
                if key not in self._scenarios:
                    self._scenarios[key] = scenario
                self._scenarios.move_to_end(key)
            while len(self._scenarios) > self.max_cached_scenarios:
                self._scenarios.popitem(last=False)
        return len(missing)

    # ------------------------------------------------------------------
    # Sessions
    # ------------------------------------------------------------------
    def open_session(self, user: UserProfile, context: SystemContext,
                     session_id: Optional[str] = None) -> UserSession:
        """Register a user session and return it."""
        return self.registry.open(user, context, session_id=session_id)

    def open_persona_session(self, persona_key: str,
                             session_id: Optional[str] = None) -> UserSession:
        """Open a session for a registered persona key.

        The key is recorded with the session, so if the registry later
        evicts it (capacity or idle TTL) a follow-up request on the same
        session id transparently rebuilds the session from the persona's
        canonical profile.
        """
        user, context = persona_lookup(persona_key)
        return self.registry.open(user, context, session_id=session_id,
                                  persona=persona_key)

    def close_session(self, session_id: str) -> Optional[UserSession]:
        """End a session; returns it (or ``None`` if unknown)."""
        return self.registry.close(session_id)

    # ------------------------------------------------------------------
    # Request resolution and the scenario cache
    # ------------------------------------------------------------------
    def _resolve(self, request: ExplanationRequest) -> Tuple[UserProfile, SystemContext,
                                                             Optional[UserSession]]:
        """Map a request to its (user, context, session) triple."""
        if request.session_id is not None:
            session = self.registry.get(request.session_id)
            return session.user, session.context, session
        if request.user is not None or request.context is not None:
            if request.user is None or request.context is None:
                raise RequestError(
                    "ExplanationRequest needs both user and context (or neither); "
                    "got only one — refusing to silently answer for the default persona"
                )
            return request.user, request.context, None
        user, context = persona_lookup(request.persona or self.default_persona)
        return user, context, None

    def _scenario(self, question: Question, user: UserProfile,
                  context: SystemContext) -> Tuple[Scenario, bool]:
        """Return the (possibly cached) scenario and whether it was a hit."""
        key: ScenarioKey = (question, user, context)
        with self._scenario_lock:
            cached = self._scenarios.get(key)
            if cached is not None:
                self.scenario_cache_hits += 1
                self._scenarios.move_to_end(key)
                return cached, True
        if faults.ACTIVE is not None:
            faults.ACTIVE.fire("materialize", question=question.question_type)
        scenario = self.engine.build_scenario(question, user, context)
        with self._scenario_lock:
            self.scenario_cache_misses += 1
            self._scenarios[key] = scenario
            self._scenarios.move_to_end(key)
            while len(self._scenarios) > self.max_cached_scenarios:
                self._scenarios.popitem(last=False)
        return scenario, False

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------
    def _admit(self) -> None:
        """Count one request in; shed it if the in-flight limit is reached."""
        with self._admission_lock:
            if self.max_pending is not None and self._inflight >= self.max_pending:
                self.requests_rejected += 1
                raise BackpressureError(
                    f"service is at its in-flight limit ({self.max_pending} pending); "
                    "retry later",
                    scope="service",
                    queue_depth=self._inflight,
                    limit=self.max_pending,
                )
            self._inflight += 1

    def _release(self) -> None:
        with self._admission_lock:
            self._inflight -= 1

    def explain(self, request: ExplanationRequest) -> ExplanationResponse:
        """Serve one request through every cache layer.

        Reads are **snapshot-isolated**: the scenario is fetched (or built)
        once, then — with :attr:`snapshot_reads` on — the generators run
        against copy-on-write :meth:`~repro.rdf.graph.Graph.copy` snapshots
        of its graphs, so a concurrent :meth:`update_scenario` can never be
        observed mid-flight and reads never wait on the update lock.
        Raises :class:`BackpressureError` (without doing any work) when the
        in-flight limit is reached.
        """
        self._admit()
        try:
            start = time.perf_counter()
            user, context, session = self._resolve(request)
            question = parse_question(request.question)
            scenario, hit = self._scenario(question, user, context)
            if self.snapshot_reads:
                scenario = scenario.snapshot()
            if faults.ACTIVE is not None:
                faults.ACTIVE.fire("query", question=question.question_type)
            explanation = self.engine.explain(
                question, user, context,
                explanation_type=request.explanation_type,
                scenario=scenario,
            )
            if session is not None:
                session.record_question(request.question)
            elapsed = time.perf_counter() - start
            with self._scenario_lock:
                self.requests_served += 1
            with self._latency_lock:
                self._latencies.append(elapsed)
            return ExplanationResponse(
                request=request,
                explanation=explanation,
                session_id=session.session_id if session is not None else None,
                scenario_cache_hit=hit,
                elapsed_seconds=elapsed,
                scenario=scenario,
            )
        finally:
            self._release()

    def ask(
        self,
        question: str,
        session_id: Optional[str] = None,
        persona: Optional[str] = None,
        user: Optional[UserProfile] = None,
        context: Optional[SystemContext] = None,
        explanation_type: Optional[str] = None,
    ) -> ExplanationResponse:
        """Convenience wrapper building the :class:`ExplanationRequest` inline."""
        return self.explain(ExplanationRequest(
            question=question, session_id=session_id, persona=persona,
            user=user, context=context, explanation_type=explanation_type,
        ))

    def update_scenario(
        self,
        question: str,
        session_id: Optional[str] = None,
        persona: Optional[str] = None,
        user: Optional[UserProfile] = None,
        context: Optional[SystemContext] = None,
        *,
        likes: Sequence[str] = (),
        dislikes: Sequence[str] = (),
        allergies: Sequence[str] = (),
        diets: Sequence[str] = (),
        conditions: Sequence[str] = (),
        goals: Sequence[str] = (),
        recommendation=None,
    ) -> Scenario:
        """Mutate a live scenario (new restriction/preference/recommendation)
        without rebuilding it.

        The scenario for ``question`` under the addressed user is fetched
        from (or, on a first ask, built into) the scenario cache, grown
        incrementally through the engine's delta-driven closure path, and
        re-cached under the updated profile.  **Durability depends on the
        addressing mode**: a session-addressed update advances the session's
        profile, so follow-up asks on that session resolve to the grown
        profile and hit the updated entry; persona- or explicit-user
        addressed updates cannot rewrite their (immutable) source profile —
        later asks under the same persona still serve the original scenario,
        and the caller should keep using the returned updated
        :class:`Scenario` (or ask with ``user=updated.user``) to see the new
        facts.  Returns the updated scenario.
        """
        request = ExplanationRequest(
            question=question, session_id=session_id, persona=persona,
            user=user, context=context,
        )
        with self._update_lock:
            resolved_user, resolved_context, session = self._resolve(request)
            parsed = parse_question(question)
            scenario, _ = self._scenario(parsed, resolved_user, resolved_context)
            updated = self.engine.update_scenario(
                scenario,
                likes=likes, dislikes=dislikes, allergies=allergies,
                diets=diets, conditions=conditions, goals=goals,
                recommendation=recommendation,
            )
            with self._scenario_lock:
                self.scenario_updates += 1
                key: ScenarioKey = (parsed, updated.user, resolved_context)
                self._scenarios[key] = updated
                self._scenarios.move_to_end(key)
                while len(self._scenarios) > self.max_cached_scenarios:
                    self._scenarios.popitem(last=False)
            if session is not None:
                session.user = updated.user
        return updated

    def explain_batch(self, requests: Sequence[ExplanationRequest]) -> List[ExplanationResponse]:
        """Serve a batch, amortising scenario construction across requests.

        Requests that share a ``(user, context, question)`` triple — the
        same question asked under several explanation types, or by several
        sessions of the same persona — reuse one assembled-and-reasoned
        scenario; distinct triples still benefit from the closure and
        prepared-query caches underneath.
        """
        return [self.explain(request) for request in requests]

    def ask_batch(self, items: Sequence[Tuple[str, str]]) -> List[ExplanationResponse]:
        """Answer ``(persona_key, question)`` pairs as one batch."""
        return self.explain_batch([
            ExplanationRequest(question=question, persona=persona_key)
            for persona_key, question in items
        ])

    def explain_all_types(self, request: ExplanationRequest) -> Dict[str, ExplanationResponse]:
        """Answer one question under every supported explanation type.

        The scenario is built (or fetched) once; the nine generators then
        run against the shared reasoned graph.  A session-addressed
        request is recorded in the session history once, not once per
        type.
        """
        user, context, session = self._resolve(request)
        responses: Dict[str, ExplanationResponse] = {}
        for explanation_type in self.engine.supported_explanation_types:
            typed = ExplanationRequest(
                question=request.question, user=user, context=context,
                explanation_type=explanation_type,
            )
            response = self.explain(typed)
            if session is not None:
                response.session_id = session.session_id
            responses[explanation_type] = response
        if session is not None:
            session.record_question(request.question)
        return responses

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def clear_caches(self) -> None:
        """Drop the scenario cache and the engine's closure cache."""
        with self._scenario_lock:
            self._scenarios.clear()
        # Don't force a lazy engine build just to clear a cache it has not
        # populated yet.
        closure = self._engine.builder.closure_cache if self._engine is not None else None
        if closure is not None:
            closure.clear()

    def latency_snapshot(self) -> List[float]:
        """Recent serve latencies in seconds (bounded sliding window).

        Copied under the lock, so it is safe against concurrent
        :meth:`explain` calls appending to the window.
        """
        with self._latency_lock:
            return list(self._latencies)

    def stats(self) -> ServiceStats:
        """A snapshot of every cache layer's counters.

        Safe on an idle service: reading stats never triggers the lazy
        engine build.
        """
        closure = self._engine.builder.closure_cache if self._engine is not None else None
        samples = self.latency_snapshot()
        return ServiceStats(
            requests_served=self.requests_served,
            requests_rejected=self.requests_rejected,
            scenario_cache_hits=self.scenario_cache_hits,
            scenario_cache_misses=self.scenario_cache_misses,
            scenario_updates=self.scenario_updates,
            closure_cache=closure.stats() if closure is not None else {},
            prepared_query_cache=prepared_cache().stats(),
            query_planner=planner_stats(),
            parallel_reasoner=parallel_stats(),
            term_store=(self._engine.builder.store_stats()
                        if self._engine is not None else {}),
            active_sessions=len(self.registry),
            session_rebuilds=self.registry.rebuilds,
            latency_ms={
                "p50": percentile(samples, 0.50) * 1000.0,
                "p99": percentile(samples, 0.99) * 1000.0,
                "max_ms": max(samples) * 1000.0 if samples else 0.0,
                "samples": float(len(samples)),
            },
        )
