"""HTTP/JSON transport for the sharded explanation service.

:class:`ExplanationServer` exposes a
:class:`~repro.service.shards.ShardedExplanationService` over a small,
dependency-free HTTP API (stdlib ``http.server`` only, matching the
repo's no-new-dependencies rule):

====================  =====================================================
``GET  /healthz``     liveness probe → ``{"status": "ok"}``
``GET  /stats``       aggregated fleet + per-shard counters
``POST /sessions``    ``{"persona": "paper"}`` → ``{"session_id": "s2:7"}``
``POST /ask``         ``{"question": ..., "session_id"|"persona": ...,``
                      ``"explanation_type": ...?}`` → explanation summary
``POST /update``      ``{"question": ..., "session_id"|"persona": ...,``
                      ``"likes"|"dislikes"|"allergies"|"diets"|``
                      ``"conditions"|"goals": [...]}`` → updated profile
====================  =====================================================

Connection handling is threaded (one accept thread per connection), but
the *work* is admission-controlled: a handler immediately enqueues the
request on its session's shard and waits on the result, so a full shard
queue surfaces as an immediate **503** carrying the typed
:class:`~repro.service.api.BackpressureError` payload — clients see a
retryable JSON error, never a growing backlog or a traceback.

The full status taxonomy mirrors ``repro.errors``:

* every :class:`~repro.errors.UnavailableError` — backpressure, an open
  circuit breaker, a draining fleet, a typed transient — maps to **503**
  with a ``Retry-After`` header and a machine-readable ``reason`` field
  in the JSON body, so clients can back off instead of hot-looping;
* a :class:`~repro.errors.DeadlineExceededError` maps to **504** (the
  per-request deadline comes from the fleet's ``request_timeout`` or the
  request's own ``"timeout"`` field, in seconds);
* malformed requests (bad JSON, unparseable questions, unknown
  foods/personas) raise the typed :class:`~repro.errors.RequestError`
  family and map to **400** with a JSON error body;
* *anything else* escaping a handler is an internal bug: it returns
  **500**, logs the full traceback, and bumps the ``internal_errors``
  counter surfaced by ``GET /stats`` — it is never reclassified as the
  client's fault (the transport used to map any ``KeyError``/
  ``ValueError``/``TypeError`` to 400, which masked real defects as bad
  requests).

:meth:`ExplanationServer.stop` drains gracefully: the service is marked
draining first (new ``POST`` work is rejected with a 503 ``reason:
"draining"`` while in-flight requests finish within the drain deadline),
and only then is the listener shut down.
"""

from __future__ import annotations

import json
import logging
import math
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple

from ..errors import DeadlineExceededError, RequestError, UnavailableError
from .shards import ShardedExplanationService

__all__ = ["ExplanationServer"]

logger = logging.getLogger(__name__)

#: Profile-delta fields accepted by POST /update, in the order
#: :meth:`ExplanationService.update_scenario` declares them.
_UPDATE_FIELDS = ("likes", "dislikes", "allergies", "diets", "conditions", "goals")


class _Handler(BaseHTTPRequestHandler):
    """One request handler bound to the server's sharded service."""

    #: Set by :class:`ExplanationServer` on the handler subclass.
    service: ShardedExplanationService = None  # type: ignore[assignment]
    quiet: bool = True
    protocol_version = "HTTP/1.1"

    # ------------------------------------------------------------------
    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        if not self.quiet:  # pragma: no cover - log plumbing
            super().log_message(format, *args)

    def _send_json(self, status: int, payload: Dict[str, Any],
                   headers: Optional[Dict[str, str]] = None) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _send_unavailable(self, exc: UnavailableError) -> None:
        """503 with the typed payload and an HTTP ``Retry-After`` header."""
        retry_after = exc.retry_after if exc.retry_after is not None else 1.0
        self._send_json(503, exc.to_payload(),
                        headers={"Retry-After": str(max(1, math.ceil(retry_after)))})

    def _read_json(self) -> Dict[str, Any]:
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b""
        if not raw:
            return {}
        payload = json.loads(raw.decode("utf-8"))
        if not isinstance(payload, dict):
            raise ValueError("request body must be a JSON object")
        return payload

    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - http.server API
        if self.path == "/healthz":
            self._send_json(200, {"status": "ok"})
        elif self.path == "/stats":
            try:
                payload = self.service.stats().to_dict()
            except Exception:  # noqa: BLE001 - the honest 500 path
                self._send_json(500, self._internal_error("GET /stats"))
                return
            payload["internal_errors"] = self._internal_error_count()
            self._send_json(200, payload)
        else:
            self._send_json(404, {"error": "not_found", "path": self.path})

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        try:
            payload = self._read_json()
        except (ValueError, json.JSONDecodeError) as exc:
            self._send_json(400, {"error": "bad_request", "message": str(exc)})
            return
        if self.service.draining:
            # Refuse new work during a graceful drain; in-flight requests
            # keep completing until the drain deadline.
            self._send_json(503, {
                "error": "draining", "reason": "draining",
                "message": "service is draining; retry against another instance",
                "retry_after": 1.0, "retryable": True,
            }, headers={"Retry-After": "1"})
            return
        try:
            if self.path == "/ask":
                self._send_json(*self._handle_ask(payload))
            elif self.path == "/sessions":
                self._send_json(*self._handle_open_session(payload))
            elif self.path == "/update":
                self._send_json(*self._handle_update(payload))
            else:
                self._send_json(404, {"error": "not_found", "path": self.path})
        except UnavailableError as exc:
            # The fail-fast 503 family: backpressure, breaker-open,
            # draining, typed transients — retryable, with Retry-After.
            self._send_unavailable(exc)
        except DeadlineExceededError as exc:
            self._send_json(504, exc.to_payload())
        except RequestError as exc:
            # Only the typed request-validation family is the client's
            # fault: unparseable questions, unknown personas/foods/
            # sessions/explanation types, inconsistent addressing.
            message = exc.args[0] if exc.args else str(exc)
            self._send_json(400, {"error": "bad_request", "message": str(message)})
        except Exception:  # noqa: BLE001 - the honest 500 path
            self._send_json(500, self._internal_error(f"POST {self.path}"))

    # ------------------------------------------------------------------
    def _internal_error_count(self) -> int:
        server = self.server
        with server.internal_error_lock:  # type: ignore[attr-defined]
            return server.internal_errors  # type: ignore[attr-defined]

    def _internal_error(self, where: str) -> Dict[str, Any]:
        """Log the active exception's traceback and count it; 500 payload."""
        server = self.server
        with server.internal_error_lock:  # type: ignore[attr-defined]
            server.internal_errors += 1  # type: ignore[attr-defined]
        logger.exception("internal error handling %s", where)
        return {"error": "internal_error",
                "message": "internal server error (see server log)"}

    # ------------------------------------------------------------------
    @staticmethod
    def _timeout_from(payload: Dict[str, Any]) -> Optional[float]:
        """The request's own deadline (seconds), or None for the default."""
        raw = payload.get("timeout")
        if raw is None:
            return None
        try:
            timeout = float(raw)
        except (TypeError, ValueError):
            raise RequestError(f"'timeout' must be a number, got {raw!r}") from None
        if timeout <= 0:
            raise RequestError("'timeout' must be positive")
        return timeout

    def _handle_ask(self, payload: Dict[str, Any]) -> Tuple[int, Dict[str, Any]]:
        question = payload.get("question")
        if not question:
            return 400, {"error": "bad_request", "message": "missing 'question'"}
        response = self.service.ask(
            question,
            session_id=payload.get("session_id"),
            persona=payload.get("persona"),
            explanation_type=payload.get("explanation_type"),
            timeout=self._timeout_from(payload),
        )
        return 200, response.summary()

    def _handle_open_session(self, payload: Dict[str, Any]) -> Tuple[int, Dict[str, Any]]:
        persona = payload.get("persona") or self.service.default_persona
        session = self.service.open_persona_session(persona)
        return 200, {"session_id": session.session_id, "persona": persona,
                     "user": session.user.identifier}

    def _handle_update(self, payload: Dict[str, Any]) -> Tuple[int, Dict[str, Any]]:
        question = payload.get("question")
        if not question:
            return 400, {"error": "bad_request", "message": "missing 'question'"}
        additions = {}
        for fieldname in _UPDATE_FIELDS:
            values = payload.get(fieldname)
            if values:
                if not isinstance(values, (list, tuple)):
                    return 400, {"error": "bad_request",
                                 "message": f"'{fieldname}' must be a list"}
                additions[fieldname] = tuple(values)
        updated = self.service.update_scenario(
            question,
            session_id=payload.get("session_id"),
            persona=payload.get("persona"),
            timeout=self._timeout_from(payload),
            **additions,
        )
        return 200, {
            "user": updated.user.identifier,
            "likes": list(updated.user.likes),
            "dislikes": list(updated.user.dislikes),
            "allergies": list(updated.user.allergies),
            "diets": list(updated.user.diets),
            "conditions": list(updated.user.conditions),
            "goals": list(updated.user.goals),
            "inferred_triples": len(updated.inferred),
        }


class ExplanationServer:
    """A threaded HTTP front-end over a sharded explanation service.

    ``port=0`` binds an ephemeral port (the bound port is exposed as
    :attr:`port`), which is what the tests and local tooling use.  The
    server can run inline (:meth:`serve_forever`) or on a background
    thread (:meth:`start` / :meth:`stop`).
    """

    def __init__(self, service: ShardedExplanationService,
                 host: str = "127.0.0.1", port: int = 8080,
                 quiet: bool = True,
                 drain_timeout: Optional[float] = None) -> None:
        self.service = service
        self.drain_timeout = drain_timeout
        handler = type("BoundHandler", (_Handler,), {"service": service, "quiet": quiet})
        self._httpd = ThreadingHTTPServer((host, port), handler)
        self._httpd.daemon_threads = True
        # Internal-bug counter, shared by all handler threads (handlers
        # reach it via ``self.server``) and surfaced by GET /stats.
        self._httpd.internal_errors = 0
        self._httpd.internal_error_lock = threading.Lock()
        self.host, self.port = self._httpd.server_address[:2]
        self._thread: Optional[threading.Thread] = None

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    @property
    def internal_errors(self) -> int:
        """How many handler invocations crashed with a non-request error."""
        with self._httpd.internal_error_lock:
            return self._httpd.internal_errors

    def serve_forever(self) -> None:
        """Serve until interrupted (the CLI ``serve --port`` loop)."""
        self._httpd.serve_forever()

    def start(self) -> "ExplanationServer":
        """Serve on a daemon thread and return immediately."""
        self._thread = threading.Thread(target=self._httpd.serve_forever,
                                        name="explanation-server", daemon=True)
        self._thread.start()
        return self

    def stop(self, timeout: Optional[float] = None) -> None:
        """Drain gracefully, then shut the listener down.

        The service drains *before* the listener closes: from the first
        moment new ``POST`` work is rejected with 503 ``reason:
        "draining"`` while in-flight requests finish (bounded by
        ``timeout``, default ``drain_timeout``); queued work past the
        deadline is cancelled with a typed error.  Only then does the
        listener stop accepting connections.
        """
        self.service.stop(timeout=timeout if timeout is not None
                          else self.drain_timeout)
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join()
            self._thread = None
