"""Serving layer: prepared queries, cached reasoning, concurrent multi-tenant APIs.

This package turns the single-request :class:`repro.core.engine.ExplanationEngine`
into a service suitable for heavy interactive traffic:

* :class:`ExplanationService` — one cached, session-aware instance;
* :class:`ShardedExplanationService` — N independent shards behind
  bounded worker queues, with snapshot-isolated reads and typed
  :class:`BackpressureError` load shedding;
* :class:`ExplanationServer` — the HTTP/JSON transport over the shards.

See ``docs/architecture.md`` for where the cache layers and the serving
topology sit in the request data flow.
"""

from .api import BackpressureError, ExplanationRequest, ExplanationResponse, ServiceStats
from .server import ExplanationServer
from .service import ExplanationService
from .shards import FleetStats, ServiceShard, ShardedExplanationService

__all__ = [
    "BackpressureError",
    "ExplanationRequest",
    "ExplanationResponse",
    "ExplanationServer",
    "ExplanationService",
    "FleetStats",
    "ServiceShard",
    "ServiceStats",
    "ShardedExplanationService",
]
