"""Serving layer: prepared queries, cached reasoning, concurrent multi-tenant APIs.

This package turns the single-request :class:`repro.core.engine.ExplanationEngine`
into a service suitable for heavy interactive traffic:

* :class:`ExplanationService` — one cached, session-aware instance;
* :class:`ShardedExplanationService` — N independent shards behind
  bounded worker queues, with snapshot-isolated reads, typed
  :class:`BackpressureError` load shedding, per-request deadlines,
  worker supervision, per-shard :class:`CircuitBreaker`\\ s and graceful
  drain (see ``docs/architecture.md`` § Failure model);
* :class:`ExplanationServer` — the HTTP/JSON transport over the shards
  (503 + ``Retry-After`` for the unavailable family, 504 for deadline
  misses).

See ``docs/architecture.md`` for where the cache layers and the serving
topology sit in the request data flow.
"""

from ..errors import (
    DeadlineExceededError,
    ServiceDrainingError,
    ShardUnavailableError,
    TransientServingError,
    UnavailableError,
    WorkerLostError,
)
from .api import BackpressureError, ExplanationRequest, ExplanationResponse, ServiceStats
from .server import ExplanationServer
from .service import ExplanationService
from .shards import CircuitBreaker, FleetStats, ServiceShard, ShardedExplanationService

__all__ = [
    "BackpressureError",
    "CircuitBreaker",
    "DeadlineExceededError",
    "ExplanationRequest",
    "ExplanationResponse",
    "ExplanationServer",
    "ExplanationService",
    "FleetStats",
    "ServiceDrainingError",
    "ServiceShard",
    "ServiceStats",
    "ShardUnavailableError",
    "ShardedExplanationService",
    "TransientServingError",
    "UnavailableError",
    "WorkerLostError",
]
