"""Serving layer: prepared queries, cached reasoning, batched multi-user APIs.

This package turns the single-request :class:`repro.core.engine.ExplanationEngine`
into a service suitable for heavy interactive traffic.  See
:class:`ExplanationService` for the entry point and
``docs/architecture.md`` for where its cache layers sit in the request
data flow.
"""

from .api import ExplanationRequest, ExplanationResponse, ServiceStats
from .service import ExplanationService

__all__ = [
    "ExplanationRequest",
    "ExplanationResponse",
    "ExplanationService",
    "ServiceStats",
]
