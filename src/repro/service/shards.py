"""Sharded, concurrent multi-tenant serving: N independent service shards.

:class:`ShardedExplanationService` is the horizontal layer above
:class:`~repro.service.service.ExplanationService`.  It partitions the
tenant population across ``num_shards`` fully independent shards, each
owning

* its **own** :class:`~repro.core.scenario.ScenarioBuilder` with a private
  :class:`~repro.owl.MaterializationCache` (closure cache), over **one
  shared, read-only base graph** — every shard's scenario graphs are COW
  :meth:`~repro.rdf.graph.Graph.copy` children of the same dictionary-
  encoded family, so the ontology + knowledge graph is stored once;
* its own scenario cache, :class:`~repro.users.sessions.SessionRegistry`
  and statistics counters;
* a **bounded request queue** drained by a pool of worker threads —
  admission control: a full queue sheds the request with a typed
  :class:`~repro.service.api.BackpressureError` instead of letting
  latency grow without bound.

Routing is stable and stateless: a session id minted by this layer is
``s<shard>:<n>``, so any front-end thread can route a follow-up request
with one string parse; persona- or profile-addressed requests hash their
tenant key (CRC-32) so one tenant's traffic always lands on the shard
holding its warm caches.  Aggregate capacity therefore scales linearly
with the shard count — N shards hold N× the scenarios and closures one
instance can — which is what carries a working set that thrashes a single
serial service.

Reads are snapshot-isolated end to end: each shard's service answers
against COW snapshots of its cached scenarios (see
:meth:`repro.core.scenario.Scenario.snapshot`), so an ``ask`` racing an
``update_scenario`` on the same session observes either the pre- or the
post-update scenario, never a torn mixture, and never blocks behind the
update lock.

Failure model (see ``docs/architecture.md`` § Failure model):

* **Deadlines** — :meth:`ServiceShard.submit`/:meth:`~ServiceShard.call`
  take a per-request ``timeout``; a caller that waits past it gets a
  typed :class:`~repro.errors.DeadlineExceededError` and queued work
  whose deadline already expired is skipped before execution, so a
  deadline miss never wedges a caller or wastes a worker.
* **Supervision** — each worker keeps a :class:`_WorkerState` heartbeat;
  :meth:`ServiceShard.supervise` (driven by the fleet's watchdog thread)
  restarts dead workers and retires-and-replaces wedged ones (a Python
  thread cannot be killed, so a wedged worker is abandoned to finish or
  not while a fresh one takes its slot).
* **Circuit breaker** — consecutive failures or sustained deadline
  misses open the shard's :class:`CircuitBreaker`; callers then fail
  fast with :class:`~repro.errors.ShardUnavailableError` carrying a
  ``retry_after`` instead of queueing behind a sick shard.  After a
  jittered exponential cooldown a single half-open probe decides whether
  to close it again.
* **Retry** — the fleet retries **idempotent asks** (never updates) on
  :class:`~repro.errors.TransientServingError` with jittered exponential
  backoff, within the request's deadline.
* **Graceful drain** — ``stop(timeout=...)`` first gates new submits
  (fixing the submit/stop race where a request enqueued into a stopping
  shard was never drained), waits for in-flight work up to the deadline,
  then cancels the remainder with typed
  :class:`~repro.errors.ServiceDrainingError` so no caller is left
  hanging.  ``stop`` is idempotent and safe to call concurrently.
"""

from __future__ import annotations

import gc
import itertools
import queue
import random
import threading
import time
import zlib
from concurrent.futures import Future
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..core.engine import ExplanationEngine
from ..core.scenario import Scenario, ScenarioBuilder
from ..errors import (
    DeadlineExceededError,
    RequestError,
    ServiceDrainingError,
    ShardUnavailableError,
    TransientServingError,
    UnavailableError,
    WorkerLostError,
)
from ..foodkg.catalog import build_core_catalog
from ..foodkg.schema import FoodCatalog
from ..owl import MaterializationCache
from ..storage.snapshot import GraphSnapshot, load_snapshot
from ..testing import faults
from ..testing.faults import InjectedWorkerCrash
from ..users.context import SystemContext
from ..users.personas import persona as persona_lookup
from ..users.profile import UserProfile
from ..users.sessions import SessionRegistry, UserSession
from .api import BackpressureError, ExplanationRequest, ExplanationResponse, ServiceStats
from .service import ExplanationService, percentile

__all__ = ["CircuitBreaker", "ServiceShard", "ShardedExplanationService", "FleetStats"]


class CircuitBreaker:
    """Fail-fast gate for one shard: closed → open → half-open → closed.

    Closed is the steady state; every completed request reports its
    outcome here.  ``failure_threshold`` consecutive failures or
    ``timeout_threshold`` consecutive deadline misses trip it **open**:
    :meth:`acquire` then raises :class:`ShardUnavailableError`
    immediately (no queueing behind a sick shard) with a ``retry_after``
    equal to the remaining cooldown.  The cooldown is jittered
    exponential — ``cooldown × 2^(open streak) × U[0.5, 1.0)`` from a
    seeded RNG, capped at ``max_cooldown`` — so a fleet of callers does
    not re-converge on the shard in lockstep.  When it elapses the
    breaker goes **half-open**: exactly one probe request is admitted;
    its success closes the breaker, its failure re-opens with a doubled
    cooldown.
    """

    def __init__(self, shard_index: int, *, failure_threshold: int = 5,
                 timeout_threshold: int = 8, cooldown: float = 0.25,
                 max_cooldown: float = 30.0, seed: int = 0) -> None:
        if failure_threshold <= 0 or timeout_threshold <= 0:
            raise ValueError("breaker thresholds must be positive")
        self.shard_index = shard_index
        self.failure_threshold = failure_threshold
        self.timeout_threshold = timeout_threshold
        self.cooldown = cooldown
        self.max_cooldown = max_cooldown
        # Distinct stream per shard from one fleet seed, deterministically.
        self._rng = random.Random((seed << 8) ^ shard_index)
        self._lock = threading.Lock()
        self._state = "closed"
        self._consecutive_failures = 0
        self._consecutive_timeouts = 0
        self._open_streak = 0
        self._open_until = 0.0
        self._probe_in_flight = False
        # Lifetime telemetry (exported via stats()).
        self.opens = 0
        self.failures = 0
        self.timeouts = 0
        self.rejected_fast = 0

    # -- state ----------------------------------------------------------
    def _state_locked(self) -> str:
        if self._state == "open" and time.monotonic() >= self._open_until:
            self._state = "half_open"
            self._probe_in_flight = False
        return self._state

    @property
    def state(self) -> str:
        with self._lock:
            return self._state_locked()

    def _cooldown_locked(self) -> float:
        base = min(self.cooldown * (2 ** max(self._open_streak - 1, 0)),
                   self.max_cooldown)
        return base * (0.5 + self._rng.random() / 2.0)

    def _open_locked(self) -> None:
        self._state = "open"
        self._open_streak += 1
        self.opens += 1
        self._open_until = time.monotonic() + self._cooldown_locked()
        self._probe_in_flight = False
        self._consecutive_failures = 0
        self._consecutive_timeouts = 0

    # -- admission ------------------------------------------------------
    def acquire(self) -> None:
        """Admit one request, or fail fast with :class:`ShardUnavailableError`."""
        with self._lock:
            state = self._state_locked()
            if state == "closed":
                return
            if state == "half_open" and not self._probe_in_flight:
                self._probe_in_flight = True
                return
            self.rejected_fast += 1
            if state == "open":
                retry_after = max(self._open_until - time.monotonic(), 0.0)
            else:  # half-open with the probe already in flight
                retry_after = self.cooldown
            raise ShardUnavailableError(
                f"shard {self.shard_index} circuit breaker is "
                f"{'open' if state == 'open' else 'probing'}; "
                f"retry in {retry_after:.2f}s",
                scope="shard", shard=self.shard_index,
                retry_after=round(max(retry_after, 0.001), 3),
            )

    # -- outcomes -------------------------------------------------------
    def record_success(self) -> None:
        with self._lock:
            self._state = "closed"
            self._probe_in_flight = False
            self._open_streak = 0
            self._consecutive_failures = 0
            self._consecutive_timeouts = 0

    def record_failure(self) -> None:
        with self._lock:
            self.failures += 1
            self._probe_in_flight = False
            if self._state_locked() != "closed":
                # A failed probe (or a failure while open) escalates.
                self._open_locked()
                return
            self._consecutive_failures += 1
            if self._consecutive_failures >= self.failure_threshold:
                self._open_locked()

    def record_timeout(self) -> None:
        with self._lock:
            self.timeouts += 1
            self._probe_in_flight = False
            if self._state_locked() != "closed":
                self._open_locked()
                return
            self._consecutive_timeouts += 1
            if self._consecutive_timeouts >= self.timeout_threshold:
                self._open_locked()

    def record_neutral(self) -> None:
        """An outcome that says nothing about shard health (shed work)."""
        with self._lock:
            self._probe_in_flight = False

    def stats_dict(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "state": self._state_locked(),
                "opens": self.opens,
                "failures": self.failures,
                "timeouts": self.timeouts,
                "rejected_fast": self.rejected_fast,
            }


class _WorkerState:
    """One worker thread's heartbeat, as seen by the supervisor."""

    __slots__ = ("thread", "name", "busy_since", "retired")

    def __init__(self, name: str) -> None:
        self.name = name
        self.thread: Optional[threading.Thread] = None
        #: Monotonic time this worker started executing its current
        #: request, or ``None`` while idle.  The watchdog reads it to
        #: detect wedged workers.
        self.busy_since: Optional[float] = None
        #: Set by the watchdog when the worker is deemed wedged: if the
        #: thread ever comes back to the queue it must exit instead of
        #: taking more work (its slot has already been re-staffed).
        self.retired = False


class ServiceShard:
    """One shard: a private :class:`ExplanationService` behind a bounded queue."""

    def __init__(self, index: int, service: ExplanationService,
                 queue_size: int = 64, workers: int = 2, *,
                 breaker: Optional[CircuitBreaker] = None,
                 wedge_timeout: Optional[float] = 30.0) -> None:
        if queue_size <= 0:
            raise ValueError("queue_size must be positive")
        if workers <= 0:
            raise ValueError("workers must be positive")
        self.index = index
        self.service = service
        self.queue: "queue.Queue" = queue.Queue(maxsize=queue_size)
        self.queue_size = queue_size
        self.workers = workers
        self.breaker = breaker if breaker is not None else CircuitBreaker(index)
        self.wedge_timeout = wedge_timeout
        self.rejected = 0
        self.timed_out = 0
        self.expired = 0
        self.cancelled = 0
        self.workers_restarted = 0
        self._worker_states: List[_WorkerState] = []
        self._retired: List[_WorkerState] = []
        self._worker_seq = itertools.count()
        self._started = False
        #: True from the moment a stop() begins, forever: new submits are
        #: rejected with ServiceDrainingError.  Never set on a shard that
        #: was never started, which stays usable as a plain service.
        self._stopping = False
        # One lock makes the draining-check + enqueue in submit() atomic
        # against stop() flipping _stopping — the fix for the race where a
        # submit could slip into a stopping shard's queue after the drain
        # pass and wait forever.  Also guards the worker-state lists.
        self._gate = threading.Lock()
        # Deadline counters (timed_out, expired) are bumped from caller
        # threads and worker threads concurrently; `+=` on an attribute is
        # not atomic, so without a lock two simultaneous timeouts can lose
        # an increment.  A dedicated lock (never held while calling out)
        # keeps these honest without entangling them with the _gate.
        self._counter_lock = threading.Lock()
        self._stopped_event = threading.Event()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        with self._gate:
            if self._started or self._stopping:
                return
            self._started = True
            for _ in range(self.workers):
                self._spawn_worker_locked()

    def _spawn_worker_locked(self) -> _WorkerState:
        state = _WorkerState(f"shard-{self.index}-worker-{next(self._worker_seq)}")
        thread = threading.Thread(target=self._work, args=(state,),
                                  name=state.name, daemon=True)
        state.thread = thread
        self._worker_states.append(state)
        thread.start()
        return state

    def stop(self, timeout: Optional[float] = None) -> None:
        """Drain and stop the workers; bound the drain with ``timeout``.

        With ``timeout=None`` the queue drains completely (every queued
        request is served) before the workers exit.  With a bounded
        timeout, work still queued when the deadline passes is cancelled
        with a typed :class:`ServiceDrainingError` and counted in
        ``requests_cancelled``; a worker wedged past the deadline is
        abandoned (daemon thread) rather than joined forever.

        Idempotent and safe to call concurrently: the first caller
        drains, later callers wait for it to finish.
        """
        with self._gate:
            if not self._started:
                if self._stopping:
                    # A concurrent stop() is (or was) draining; wait it out.
                    already = True
                else:
                    return  # never started: nothing to drain
            elif self._stopping:
                already = True
            else:
                self._stopping = True
                already = False
            active = [s for s in self._worker_states if not s.retired]
        if already:
            self._stopped_event.wait(timeout)
            return
        deadline = None if timeout is None else time.monotonic() + timeout
        if deadline is not None:
            # Give in-flight and queued work until the deadline.
            while time.monotonic() < deadline:
                if self.queue.empty() and all(s.busy_since is None for s in active):
                    break
                time.sleep(0.005)
            # Cancel whatever did not make it: claim each queued item away
            # from the workers, then fail its future with a typed error.
            while True:
                try:
                    item = self.queue.get_nowait()
                except queue.Empty:
                    break
                if item is None:
                    continue
                future = item[0]
                if future.set_running_or_notify_cancel():
                    self.cancelled += 1
                    future.set_exception(ServiceDrainingError(
                        f"shard {self.index} drained before this request ran",
                        scope="shard", shard=self.index))
        for _ in active:
            self.queue.put(None)  # blocking put: a sentinel is never shed
        for state in active:
            if deadline is None:
                state.thread.join()
            else:
                state.thread.join(max(deadline - time.monotonic(), 0.05))
        for state in self._retired:
            # Wedged threads may never return; give them a token grace.
            state.thread.join(0.05)
        with self._gate:
            self._worker_states = []
            self._retired = []
            self._started = False
        self._stopped_event.set()

    # ------------------------------------------------------------------
    # Supervision
    # ------------------------------------------------------------------
    def supervise(self) -> int:
        """One watchdog pass: restart dead workers, replace wedged ones.

        Returns the number of workers restarted or replaced.  A dead
        worker (its thread exited — a crash) is simply restarted.  A
        wedged worker (executing one request for longer than
        ``wedge_timeout``) cannot be killed — Python threads are not
        interruptible — so it is *retired*: marked to exit if it ever
        returns to the queue, and a fresh worker takes its slot so the
        shard regains capacity immediately.
        """
        restarted = 0
        with self._gate:
            if not self._started or self._stopping:
                return 0
            now = time.monotonic()
            for state in list(self._worker_states):
                if not state.thread.is_alive():
                    self._worker_states.remove(state)
                    self._spawn_worker_locked()
                    self.workers_restarted += 1
                    restarted += 1
                elif (self.wedge_timeout is not None
                      and state.busy_since is not None
                      and now - state.busy_since > self.wedge_timeout):
                    state.retired = True
                    self._worker_states.remove(state)
                    self._retired.append(state)
                    self._spawn_worker_locked()
                    self.workers_restarted += 1
                    restarted += 1
        return restarted

    def workers_live(self) -> int:
        with self._gate:
            return sum(1 for s in self._worker_states if s.thread.is_alive())

    # ------------------------------------------------------------------
    # Worker loop
    # ------------------------------------------------------------------
    def _work(self, state: _WorkerState) -> None:
        in_hand = None
        try:
            while True:
                item = self.queue.get()
                if state.retired:
                    # Our slot was re-staffed while we were wedged.  Hand
                    # whatever we just took to a live worker and exit —
                    # an orderly handoff, not a failure signal.
                    if item is None:
                        self.queue.put(None)
                    else:
                        self._salvage(item, record_failure=False)
                    return
                if item is None:
                    return
                in_hand = item
                future, fn, args, kwargs, deadline = item
                if deadline is not None and time.monotonic() > deadline:
                    # Expired while queued: skip it, never execute it.
                    self._expire(future)
                    in_hand = None
                    continue
                injector = faults.ACTIVE
                if injector is not None:
                    injector.fire("worker", shard=self.index, worker=state.name)
                if not future.set_running_or_notify_cancel():
                    in_hand = None
                    continue
                state.busy_since = time.monotonic()
                try:
                    result = fn(*args, **kwargs)
                except BaseException as exc:  # noqa: BLE001 - relayed via the future
                    future.set_exception(exc)
                    self._record_outcome(exc)
                else:
                    future.set_result(result)
                    self._record_outcome(None)
                finally:
                    state.busy_since = None
                in_hand = None
        except BaseException as exc:
            # The worker itself is dying — an injected crash, or a bug
            # outside request execution.  Salvage the request it was
            # holding so no caller hangs; the watchdog restores capacity.
            state.busy_since = None
            if in_hand is not None:
                self._salvage(in_hand)
            if isinstance(exc, InjectedWorkerCrash):
                return  # simulated death: die quietly, like the real thing
            raise

    def _record_outcome(self, exc: Optional[BaseException]) -> None:
        """Feed one completed request's outcome to the circuit breaker."""
        if exc is None or isinstance(exc, RequestError):
            # A served request — even an invalid one — proves the shard
            # healthy; client errors are the client's problem.
            self.breaker.record_success()
        elif isinstance(exc, DeadlineExceededError):
            self.breaker.record_timeout()
        elif isinstance(exc, TransientServingError):
            self.breaker.record_failure()
        elif isinstance(exc, UnavailableError):
            # Shed work (service-level backpressure) says nothing about
            # this shard's health.
            self.breaker.record_neutral()
        else:
            # An unexpected internal error is a shard failure signal.
            self.breaker.record_failure()

    def _expire(self, future: "Future") -> None:
        with self._counter_lock:
            self.expired += 1
        self.breaker.record_timeout()
        if future.set_running_or_notify_cancel():
            future.set_exception(DeadlineExceededError(
                f"shard {self.index}: deadline expired while the request "
                f"was still queued", shard=self.index))

    def _salvage(self, item, record_failure: bool = True) -> None:
        """Re-home the request a dying/retired worker was holding."""
        future, _fn, _args, _kwargs, deadline = item
        if future.done():
            return
        if record_failure:
            self.breaker.record_failure()
        if deadline is not None and time.monotonic() > deadline:
            with self._counter_lock:
                self.expired += 1
            if future.set_running_or_notify_cancel():
                future.set_exception(DeadlineExceededError(
                    f"shard {self.index}: deadline expired while the request "
                    f"awaited a replacement worker", shard=self.index))
            return
        try:
            self.queue.put_nowait(item)
        except queue.Full:
            if future.set_running_or_notify_cancel():
                future.set_exception(WorkerLostError(
                    f"shard {self.index}: worker died before executing this "
                    f"request and the queue is full", scope="shard",
                    shard=self.index, retry_after=0.05))

    # ------------------------------------------------------------------
    def submit(self, fn, *args, timeout: Optional[float] = None, **kwargs) -> "Future":
        """Enqueue one unit of work; shed it immediately if the queue is full.

        ``timeout`` (seconds) sets the request's deadline: the caller's
        wait is bounded (see :meth:`call`) and a worker that dequeues the
        item after the deadline skips it instead of executing it.
        Raises :class:`ServiceDrainingError` once the shard is stopping
        and :class:`ShardUnavailableError` while its breaker is open.
        """
        future: Future = Future()
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._gate:
            if self._stopping:
                raise ServiceDrainingError(
                    f"shard {self.index} is draining; new work rejected",
                    scope="shard", shard=self.index, retry_after=1.0)
            self.breaker.acquire()
            try:
                self.queue.put_nowait((future, fn, args, kwargs, deadline))
            except queue.Full:
                self.rejected += 1
                self.breaker.record_neutral()
                raise BackpressureError(
                    f"shard {self.index} queue is full "
                    f"({self.queue_size} pending requests); retry later",
                    scope="shard",
                    shard=self.index,
                    queue_depth=self.queue_size,
                    limit=self.queue_size,
                    retry_after=0.1,
                ) from None
        return future

    def call(self, fn, *args, timeout: Optional[float] = None, **kwargs):
        """Submit and wait: the synchronous serving path.

        With a ``timeout``, a missed deadline raises a typed
        :class:`DeadlineExceededError` (counted in ``requests_timed_out``)
        and the queued work is cancelled so no worker wastes time on it.
        """
        if not self._started:
            if self._stopping:
                raise ServiceDrainingError(
                    f"shard {self.index} is stopped; new work rejected",
                    scope="shard", shard=self.index, retry_after=1.0)
            # Direct execution keeps a stopped (or never-started) shard
            # usable as a plain service, e.g. in single-threaded tools.
            return fn(*args, **kwargs)
        future = self.submit(fn, *args, timeout=timeout, **kwargs)
        try:
            return future.result(timeout)
        except FutureTimeoutError:
            future.cancel()
            with self._counter_lock:
                self.timed_out += 1
            self.breaker.record_timeout()
            raise DeadlineExceededError(
                f"shard {self.index}: no result within the "
                f"{timeout:.3f}s deadline", timeout=timeout,
                shard=self.index) from None

    def queue_depth(self) -> int:
        return self.queue.qsize()

    def stats(self) -> ServiceStats:
        stats = self.service.stats()
        stats.queue_depth = self.queue_depth()
        # Queue-level sheds are counted here, service-level sheds inside the
        # service; the shard's view is the sum of both.
        stats.requests_rejected += self.rejected
        stats.requests_timed_out = self.timed_out
        stats.requests_expired = self.expired
        stats.requests_cancelled = self.cancelled
        stats.workers_live = self.workers_live()
        stats.workers_restarted = self.workers_restarted
        stats.breaker = self.breaker.stats_dict()
        return stats


@dataclass
class FleetStats:
    """Aggregated view over every shard, plus the per-shard breakdown."""

    requests_served: int = 0
    requests_rejected: int = 0
    requests_timed_out: int = 0
    requests_expired: int = 0
    requests_cancelled: int = 0
    scenario_cache_hits: int = 0
    scenario_cache_misses: int = 0
    scenario_updates: int = 0
    active_sessions: int = 0
    session_rebuilds: int = 0
    workers_live: int = 0
    workers_restarted: int = 0
    breaker_opens: int = 0
    breaker_states: List[str] = field(default_factory=list)
    queue_depths: List[int] = field(default_factory=list)
    latency_ms: Dict[str, float] = field(default_factory=dict)
    shards: List[ServiceStats] = field(default_factory=list)

    def to_text(self) -> str:
        """Render the fleet counters as the ``serve --stats`` footer."""
        lines = [
            f"shards:                 {len(self.shards)}",
            f"requests served:        {self.requests_served}",
            f"requests rejected:      {self.requests_rejected} (backpressure)",
            f"requests timed out:     {self.requests_timed_out} "
            f"({self.requests_expired} expired in queue, "
            f"{self.requests_cancelled} cancelled by drain)",
            f"workers:                {self.workers_live} live / "
            f"{self.workers_restarted} restarted; "
            f"{self.breaker_opens} breaker opens {self.breaker_states}",
            f"serve latency:          p50 {self.latency_ms.get('p50', 0.0):.1f} ms / "
            f"p99 {self.latency_ms.get('p99', 0.0):.1f} ms / "
            f"max {self.latency_ms.get('max_ms', 0.0):.1f} ms "
            f"({int(self.latency_ms.get('samples', 0))} samples)",
            f"scenario cache:         {self.scenario_cache_hits} hits / "
            f"{self.scenario_cache_misses} misses",
            f"scenario updates:       {self.scenario_updates}",
            f"queue depths:           {self.queue_depths}",
            f"active sessions:        {self.active_sessions} "
            f"({self.session_rebuilds} rebuilt after eviction)",
        ]
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, object]:
        """A JSON-friendly view (used by the HTTP ``/stats`` endpoint)."""
        return {
            "shards": len(self.shards),
            "requests_served": self.requests_served,
            "requests_rejected": self.requests_rejected,
            "requests_timed_out": self.requests_timed_out,
            "requests_expired": self.requests_expired,
            "requests_cancelled": self.requests_cancelled,
            "scenario_cache_hits": self.scenario_cache_hits,
            "scenario_cache_misses": self.scenario_cache_misses,
            "scenario_updates": self.scenario_updates,
            "active_sessions": self.active_sessions,
            "session_rebuilds": self.session_rebuilds,
            "workers_live": self.workers_live,
            "workers_restarted": self.workers_restarted,
            "breaker_opens": self.breaker_opens,
            "breaker_states": list(self.breaker_states),
            "queue_depths": list(self.queue_depths),
            "latency_ms": dict(self.latency_ms),
            "per_shard": [
                {
                    "requests_served": s.requests_served,
                    "requests_rejected": s.requests_rejected,
                    "requests_timed_out": s.requests_timed_out,
                    "requests_expired": s.requests_expired,
                    "requests_cancelled": s.requests_cancelled,
                    "scenario_cache_hits": s.scenario_cache_hits,
                    "scenario_cache_misses": s.scenario_cache_misses,
                    "queue_depth": s.queue_depth,
                    "active_sessions": s.active_sessions,
                    "workers_live": s.workers_live,
                    "workers_restarted": s.workers_restarted,
                    "breaker": dict(s.breaker),
                }
                for s in self.shards
            ],
        }


class ShardedExplanationService:
    """Hash-sharded, thread-pooled, snapshot-isolated explanation serving.

    One instance fans requests out across ``num_shards`` independent
    :class:`ExplanationService` shards (see the module docstring for the
    isolation, routing and failure model).  The public surface mirrors
    the single-instance service — :meth:`ask`, :meth:`explain`,
    :meth:`explain_batch`, :meth:`update_scenario`, session management,
    :meth:`stats` — so callers and transports can swap one for the other.

    Fault-tolerance knobs: ``request_timeout`` is the default per-request
    deadline (``None`` = unbounded; per-call ``timeout=`` overrides);
    ``drain_timeout`` bounds :meth:`stop`; ``retry_attempts``/
    ``retry_backoff`` govern the internal retry of idempotent asks on
    :class:`TransientServingError`; ``breaker_*`` configure each shard's
    :class:`CircuitBreaker`; ``wedge_timeout``/``watchdog_interval``
    configure supervision (``watchdog_interval=None`` disables the
    watchdog thread; call :meth:`supervise` manually, e.g. from tests).
    ``fault_seed`` seeds every jitter source so chaos runs are
    reproducible.
    """

    def __init__(
        self,
        num_shards: int = 4,
        workers_per_shard: int = 2,
        queue_size: int = 64,
        catalog: Optional[FoodCatalog] = None,
        engine: Optional[ExplanationEngine] = None,
        max_cached_scenarios: int = 64,
        closure_cache_size: int = 16,
        max_sessions_per_shard: int = 1024,
        session_ttl: Optional[float] = None,
        snapshot_reads: bool = True,
        start: bool = True,
        default_persona: str = "paper",
        snapshot=None,
        request_timeout: Optional[float] = None,
        drain_timeout: Optional[float] = None,
        retry_attempts: int = 2,
        retry_backoff: float = 0.05,
        breaker_failure_threshold: int = 5,
        breaker_timeout_threshold: int = 8,
        breaker_cooldown: float = 0.25,
        wedge_timeout: Optional[float] = 30.0,
        watchdog_interval: Optional[float] = 0.25,
        fault_seed: int = 0,
        reasoner_workers: int = 1,
    ) -> None:
        if num_shards <= 0:
            raise ValueError("num_shards must be positive")
        if snapshot is not None and engine is not None:
            raise ValueError("pass either engine= or snapshot=, not both")
        loaded: Optional[GraphSnapshot] = None
        if snapshot is not None:
            # Cold-start from the persistent snapshot store: the base
            # graph (term dictionary, triples, indexes) is rebuilt from
            # the struct-packed image instead of re-parsed from turtle,
            # and any persisted closures are seeded into the shard caches
            # below so first-touch requests skip materialisation.  The
            # catalog must be the one the snapshot graph was loaded from
            # (the curated core catalog unless ``catalog=`` says
            # otherwise).
            loaded = snapshot if isinstance(snapshot, GraphSnapshot) else load_snapshot(snapshot)
            shared_catalog = catalog if catalog is not None else build_core_catalog()
            self._base_engine = ExplanationEngine(builder=ScenarioBuilder(
                shared_catalog, base_graph=loaded.graph))
        else:
            # One base engine supplies the shared, read-only ontology + KG
            # graph (and its term dictionary); every shard's builder
            # copies it COW.
            self._base_engine = engine if engine is not None else ExplanationEngine(catalog=catalog)
            shared_catalog = self._base_engine.catalog
        base_graph = self._base_engine.builder._base
        self.request_timeout = request_timeout
        self.drain_timeout = drain_timeout
        self.retry_attempts = retry_attempts
        self.retry_backoff = retry_backoff
        self._retry_rng = random.Random((fault_seed << 8) ^ 0xA5)
        self._retry_lock = threading.Lock()
        self._watchdog_interval = watchdog_interval
        self._watchdog: Optional[threading.Thread] = None
        self._watchdog_stop = threading.Event()
        self._stop_lock = threading.Lock()
        self._stopped = False
        self._draining = False
        self._shards: List[ServiceShard] = []
        for index in range(num_shards):
            builder = ScenarioBuilder(
                shared_catalog,
                base_graph=base_graph,
                closure_cache=MaterializationCache(max_size=closure_cache_size),
            )
            shard_engine = ExplanationEngine(builder=builder)
            service = ExplanationService(
                engine=shard_engine,
                max_cached_scenarios=max_cached_scenarios,
                registry=SessionRegistry(max_sessions=max_sessions_per_shard,
                                         idle_ttl=session_ttl),
                default_persona=default_persona,
                snapshot_reads=snapshot_reads,
            )
            breaker = CircuitBreaker(
                index,
                failure_threshold=breaker_failure_threshold,
                timeout_threshold=breaker_timeout_threshold,
                cooldown=breaker_cooldown,
                seed=fault_seed,
            )
            self._shards.append(ServiceShard(index, service,
                                             queue_size=queue_size,
                                             workers=workers_per_shard,
                                             breaker=breaker,
                                             wedge_timeout=wedge_timeout))
        self._session_counter = itertools.count(1)
        self._round_robin = itertools.count()
        self.default_persona = default_persona
        #: Process-pool size for bulk scenario warm-up (see :meth:`warm`);
        #: 1 keeps every closure on the caller's thread.
        self.reasoner_workers = reasoner_workers
        self._froze_gc = False
        if loaded is not None:
            self._seed_closures(loaded)
            # The seeded working set (base graph, dictionary, closures) is
            # long-lived by construction: nothing in it dies before the
            # fleet does.  Left in the young/old generations it is exactly
            # the object population that tips the collector into a full
            # gen-2 pass mid-traffic — a multi-second stop-the-world that
            # stalls every in-flight request at once and lands squarely in
            # the tail.  Sweep the construction garbage now, then freeze
            # the survivors into the permanent generation so steady-state
            # collections never retrace them.
            gc.collect()
            gc.freeze()
            self._froze_gc = True
        if start:
            self.start()

    def _seed_closures(self, loaded: GraphSnapshot) -> None:
        """Install snapshot closure entries into the shard caches.

        A labelled entry goes only to its label's home shard (the same
        CRC-32 routing requests use, so the warm closure sits exactly
        where that tenant's traffic lands); unlabelled entries go to every
        shard.  The graphs are shared read-only between shards — the
        caches never mutate a published entry.
        """
        for entry in loaded.closures:
            if entry.label is None:
                targets = self._shards
            else:
                targets = [self._shards[self._hash_key(entry.label) % len(self._shards)]]
            for shard in targets:
                cache = shard.service.engine.builder.closure_cache
                if cache is not None:
                    cache.install(entry.asserted, entry.closure, entry.post_added)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        if self._draining:
            return
        for shard in self._shards:
            shard.start()
        if self._watchdog_interval is not None and self._watchdog is None:
            self._watchdog = threading.Thread(
                target=self._watch, name="fleet-watchdog", daemon=True)
            self._watchdog.start()

    def _watch(self) -> None:
        while not self._watchdog_stop.wait(self._watchdog_interval):
            for shard in self._shards:
                try:
                    shard.supervise()
                except Exception:  # noqa: BLE001 - the watchdog must outlive anything
                    pass

    def supervise(self) -> int:
        """Run one supervision pass over every shard (watchdog step)."""
        return sum(shard.supervise() for shard in self._shards)

    @property
    def draining(self) -> bool:
        """True once a stop() has begun; transports 503 new work."""
        return self._draining

    def stop(self, timeout: Optional[float] = None) -> None:
        """Drain the fleet and stop every shard; see :meth:`ServiceShard.stop`.

        ``timeout`` (default ``drain_timeout``) bounds the *total* drain
        across all shards; queued work past the deadline is cancelled with
        :class:`ServiceDrainingError`.  Idempotent and safe to call
        concurrently — later callers wait for the first drain to finish.
        """
        if timeout is None:
            timeout = self.drain_timeout
        self._draining = True
        with self._stop_lock:
            if self._stopped:
                return
            if self._watchdog is not None:
                self._watchdog_stop.set()
                self._watchdog.join(1.0)
                self._watchdog = None
            deadline = None if timeout is None else time.monotonic() + timeout
            for shard in self._shards:
                remaining = (None if deadline is None
                             else max(deadline - time.monotonic(), 0.0))
                shard.stop(timeout=remaining)
            if self._froze_gc:
                # Hand the seeded working set back to the collector so a
                # process that retires one fleet and builds another (tests,
                # rolling restarts in-process) doesn't grow the permanent
                # generation without bound.
                gc.unfreeze()
                self._froze_gc = False
            self._stopped = True

    def __enter__(self) -> "ShardedExplanationService":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def warm(self, requests: Optional[Sequence[Tuple]] = None
             ) -> "ShardedExplanationService":
        """Pre-parse the competency templates; optionally pre-build scenarios.

        ``requests`` is an iterable of ``(question, user, context)``
        triples the fleet expects to serve (e.g. the tenants whose
        closures the snapshot seeded).  Each is routed to its tenant's
        home shard — the same CRC-32 routing live traffic uses — and its
        scenario is built into that shard's cache, so the opening burst
        after a cold start pays warm-path cost instead of convoying on
        first-touch scenario builds (see
        :meth:`ExplanationService.prewarm_scenario`).

        With ``reasoner_workers > 1`` the requests are grouped by home
        shard and each group is closed in one bulk pass
        (:meth:`ExplanationService.prewarm_many` →
        :meth:`repro.owl.MaterializationCache.materialise_many`), so a
        fleet cold-start materialises all seeded tenants' scenarios
        across a process pool instead of one serial closure at a time.
        """
        for shard in self._shards:
            shard.service.warm()
        if requests:
            if self.reasoner_workers > 1:
                by_shard: Dict[int, List[Tuple]] = {}
                for question, user, context in requests:
                    shard = self._shard_by_key(user.identifier)
                    by_shard.setdefault(shard.index, []).append(
                        (question, user, context))
                for index, group in by_shard.items():
                    self._shards[index].service.prewarm_many(
                        group, workers=self.reasoner_workers)
            else:
                for question, user, context in requests:
                    shard = self._shard_by_key(user.identifier)
                    shard.service.prewarm_scenario(question, user, context)
        return self

    @property
    def num_shards(self) -> int:
        return len(self._shards)

    @property
    def shards(self) -> Sequence[ServiceShard]:
        return tuple(self._shards)

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    @staticmethod
    def _hash_key(key: str) -> int:
        # CRC-32 rather than hash(): stable across processes and runs
        # (str hashing is salted per interpreter), so a session id minted
        # by one front-end routes identically everywhere.
        return zlib.crc32(key.encode("utf-8"))

    def _shard_by_key(self, key: str) -> ServiceShard:
        return self._shards[self._hash_key(key) % len(self._shards)]

    def shard_for_session(self, session_id: str) -> ServiceShard:
        """The shard owning ``session_id`` (parse the ``s<i>:`` prefix)."""
        if session_id.startswith("s") and ":" in session_id:
            prefix = session_id[1:session_id.index(":")]
            if prefix.isdigit():
                return self._shards[int(prefix) % len(self._shards)]
        # Foreign ids (opened directly on a shard's registry) fall back to
        # a stable hash of the id itself.
        return self._shard_by_key(session_id)

    def _shard_for_request(self, request: ExplanationRequest) -> ServiceShard:
        if request.session_id is not None:
            return self.shard_for_session(request.session_id)
        if request.user is not None:
            return self._shard_by_key(request.user.identifier)
        if request.persona is not None:
            return self._shard_by_key(request.persona)
        return self._shard_by_key(self.default_persona)

    # ------------------------------------------------------------------
    # Sessions
    # ------------------------------------------------------------------
    def _mint_session_id(self, shard: ServiceShard) -> str:
        return f"s{shard.index}:{next(self._session_counter)}"

    def open_session(self, user: UserProfile, context: SystemContext) -> UserSession:
        """Open a session on the shard owning this profile's tenant key."""
        shard = self._shard_by_key(user.identifier)
        return shard.service.open_session(
            user, context, session_id=self._mint_session_id(shard))

    def open_persona_session(self, persona_key: str) -> UserSession:
        """Open a persona session on that persona's home shard."""
        user, _ = persona_lookup(persona_key)
        shard = self._shard_by_key(user.identifier)
        return shard.service.open_persona_session(
            persona_key, session_id=self._mint_session_id(shard))

    def close_session(self, session_id: str) -> Optional[UserSession]:
        return self.shard_for_session(session_id).service.close_session(session_id)

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------
    def _retry_delay(self, attempt: int) -> float:
        with self._retry_lock:
            jitter = 0.5 + self._retry_rng.random() / 2.0
        return min(self.retry_backoff * (2 ** attempt), 2.0) * jitter

    def explain(self, request: ExplanationRequest,
                timeout: Optional[float] = None) -> ExplanationResponse:
        """Serve one request on its home shard's worker pool.

        ``timeout`` (default ``request_timeout``) bounds the whole call,
        retries included; expiry raises :class:`DeadlineExceededError`.
        Asks are idempotent, so a :class:`TransientServingError` (e.g. a
        lost worker) is retried up to ``retry_attempts`` times with
        jittered exponential backoff before surfacing.  Raises
        :class:`BackpressureError` if the shard's queue is full and
        :class:`ShardUnavailableError` while its breaker is open (neither
        is retried internally — the caller owns that backoff); request-
        level errors propagate exactly as the underlying service raises
        them.
        """
        if timeout is None:
            timeout = self.request_timeout
        deadline = None if timeout is None else time.monotonic() + timeout
        shard = self._shard_for_request(request)
        attempt = 0
        while True:
            remaining = None if deadline is None else deadline - time.monotonic()
            if remaining is not None and remaining <= 0:
                raise DeadlineExceededError(
                    f"request deadline ({timeout:.3f}s) expired",
                    timeout=timeout, shard=shard.index)
            try:
                return shard.call(shard.service.explain, request,
                                  timeout=remaining)
            except TransientServingError:
                if attempt >= self.retry_attempts:
                    raise
                delay = self._retry_delay(attempt)
                if deadline is not None and time.monotonic() + delay >= deadline:
                    raise
                time.sleep(delay)
                attempt += 1

    def ask(
        self,
        question: str,
        session_id: Optional[str] = None,
        persona: Optional[str] = None,
        user: Optional[UserProfile] = None,
        context: Optional[SystemContext] = None,
        explanation_type: Optional[str] = None,
        timeout: Optional[float] = None,
    ) -> ExplanationResponse:
        """Convenience wrapper mirroring :meth:`ExplanationService.ask`."""
        return self.explain(ExplanationRequest(
            question=question, session_id=session_id, persona=persona,
            user=user, context=context, explanation_type=explanation_type,
        ), timeout=timeout)

    def explain_batch(self, requests: Sequence[ExplanationRequest],
                      timeout: Optional[float] = None) -> List[ExplanationResponse]:
        """Serve a batch across shards concurrently, preserving order.

        All requests are enqueued up front (so shards work in parallel)
        and the responses are gathered in request order.  A shed request
        surfaces its :class:`BackpressureError` (or breaker/draining
        rejection) when its slot is reached; ``timeout`` bounds the whole
        batch.
        """
        if timeout is None:
            timeout = self.request_timeout
        deadline = None if timeout is None else time.monotonic() + timeout
        futures: List[Tuple[ServiceShard, Optional[Future], Optional[UnavailableError]]] = []
        for request in requests:
            shard = self._shard_for_request(request)
            try:
                if shard._started:
                    futures.append((shard, shard.submit(
                        shard.service.explain, request, timeout=timeout), None))
                else:
                    # Degenerate unstarted mode: execute inline.
                    result: Future = Future()
                    result.set_result(shard.service.explain(request))
                    futures.append((shard, result, None))
            except UnavailableError as exc:
                futures.append((shard, None, exc))
        responses: List[ExplanationResponse] = []
        for shard, future, rejection in futures:
            if rejection is not None:
                raise rejection
            remaining = (None if deadline is None
                         else max(deadline - time.monotonic(), 0.0))
            try:
                responses.append(future.result(remaining))
            except FutureTimeoutError:
                future.cancel()
                with shard._counter_lock:
                    shard.timed_out += 1
                shard.breaker.record_timeout()
                raise DeadlineExceededError(
                    f"batch deadline ({timeout:.3f}s) expired",
                    timeout=timeout, shard=shard.index) from None
        return responses

    def update_scenario(self, question: str, session_id: Optional[str] = None,
                        persona: Optional[str] = None,
                        timeout: Optional[float] = None, **additions) -> Scenario:
        """Apply a scenario update on the owning shard's worker pool.

        Updates are **not** idempotent, so unlike :meth:`explain` they are
        never retried internally — a transient failure surfaces to the
        caller, who knows whether re-applying is safe.
        """
        if timeout is None:
            timeout = self.request_timeout
        request = ExplanationRequest(question=question, session_id=session_id,
                                     persona=persona)
        shard = self._shard_for_request(request)
        return shard.call(shard.service.update_scenario, question,
                          session_id=session_id, persona=persona,
                          timeout=timeout, **additions)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def clear_caches(self) -> None:
        for shard in self._shards:
            shard.service.clear_caches()

    def stats(self) -> FleetStats:
        """Aggregate counters plus the per-shard breakdown."""
        per_shard = [shard.stats() for shard in self._shards]
        samples: List[float] = []
        for shard in self._shards:
            samples.extend(shard.service.latency_snapshot())
        return FleetStats(
            requests_served=sum(s.requests_served for s in per_shard),
            requests_rejected=sum(s.requests_rejected for s in per_shard),
            requests_timed_out=sum(s.requests_timed_out for s in per_shard),
            requests_expired=sum(s.requests_expired for s in per_shard),
            requests_cancelled=sum(s.requests_cancelled for s in per_shard),
            scenario_cache_hits=sum(s.scenario_cache_hits for s in per_shard),
            scenario_cache_misses=sum(s.scenario_cache_misses for s in per_shard),
            scenario_updates=sum(s.scenario_updates for s in per_shard),
            active_sessions=sum(s.active_sessions for s in per_shard),
            session_rebuilds=sum(s.session_rebuilds for s in per_shard),
            workers_live=sum(s.workers_live for s in per_shard),
            workers_restarted=sum(s.workers_restarted for s in per_shard),
            breaker_opens=sum(s.breaker.get("opens", 0) for s in per_shard),
            breaker_states=[s.breaker.get("state", "closed") for s in per_shard],
            queue_depths=[s.queue_depth for s in per_shard],
            latency_ms={
                "p50": percentile(samples, 0.50) * 1000.0,
                "p99": percentile(samples, 0.99) * 1000.0,
                "max_ms": max(samples) * 1000.0 if samples else 0.0,
                "samples": float(len(samples)),
            },
            shards=per_shard,
        )
