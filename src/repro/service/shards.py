"""Sharded, concurrent multi-tenant serving: N independent service shards.

:class:`ShardedExplanationService` is the horizontal layer above
:class:`~repro.service.service.ExplanationService`.  It partitions the
tenant population across ``num_shards`` fully independent shards, each
owning

* its **own** :class:`~repro.core.scenario.ScenarioBuilder` with a private
  :class:`~repro.owl.MaterializationCache` (closure cache), over **one
  shared, read-only base graph** — every shard's scenario graphs are COW
  :meth:`~repro.rdf.graph.Graph.copy` children of the same dictionary-
  encoded family, so the ontology + knowledge graph is stored once;
* its own scenario cache, :class:`~repro.users.sessions.SessionRegistry`
  and statistics counters;
* a **bounded request queue** drained by a pool of worker threads —
  admission control: a full queue sheds the request with a typed
  :class:`~repro.service.api.BackpressureError` instead of letting
  latency grow without bound.

Routing is stable and stateless: a session id minted by this layer is
``s<shard>:<n>``, so any front-end thread can route a follow-up request
with one string parse; persona- or profile-addressed requests hash their
tenant key (CRC-32) so one tenant's traffic always lands on the shard
holding its warm caches.  Aggregate capacity therefore scales linearly
with the shard count — N shards hold N× the scenarios and closures one
instance can — which is what carries a working set that thrashes a single
serial service.

Reads are snapshot-isolated end to end: each shard's service answers
against COW snapshots of its cached scenarios (see
:meth:`repro.core.scenario.Scenario.snapshot`), so an ``ask`` racing an
``update_scenario`` on the same session observes either the pre- or the
post-update scenario, never a torn mixture, and never blocks behind the
update lock.
"""

from __future__ import annotations

import gc
import itertools
import queue
import threading
import zlib
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.engine import ExplanationEngine
from ..core.scenario import Scenario, ScenarioBuilder
from ..foodkg.catalog import build_core_catalog
from ..foodkg.schema import FoodCatalog
from ..owl import MaterializationCache
from ..storage.snapshot import GraphSnapshot, load_snapshot
from ..users.context import SystemContext
from ..users.personas import persona as persona_lookup
from ..users.profile import UserProfile
from ..users.sessions import SessionRegistry, UserSession
from .api import BackpressureError, ExplanationRequest, ExplanationResponse, ServiceStats
from .service import ExplanationService, percentile

__all__ = ["ServiceShard", "ShardedExplanationService", "FleetStats"]


class ServiceShard:
    """One shard: a private :class:`ExplanationService` behind a bounded queue."""

    def __init__(self, index: int, service: ExplanationService,
                 queue_size: int = 64, workers: int = 2) -> None:
        if queue_size <= 0:
            raise ValueError("queue_size must be positive")
        if workers <= 0:
            raise ValueError("workers must be positive")
        self.index = index
        self.service = service
        self.queue: "queue.Queue" = queue.Queue(maxsize=queue_size)
        self.queue_size = queue_size
        self.workers = workers
        self.rejected = 0
        self._threads: List[threading.Thread] = []
        self._started = False

    # ------------------------------------------------------------------
    def start(self) -> None:
        if self._started:
            return
        self._started = True
        for n in range(self.workers):
            thread = threading.Thread(
                target=self._work, name=f"shard-{self.index}-worker-{n}", daemon=True)
            thread.start()
            self._threads.append(thread)

    def stop(self) -> None:
        """Stop the workers after the queue drains."""
        if not self._started:
            return
        for _ in self._threads:
            self.queue.put(None)  # blocking put: a sentinel is never shed
        for thread in self._threads:
            thread.join()
        self._threads = []
        self._started = False

    def _work(self) -> None:
        while True:
            item = self.queue.get()
            if item is None:
                return
            future, fn, args, kwargs = item
            if not future.set_running_or_notify_cancel():
                continue
            try:
                future.set_result(fn(*args, **kwargs))
            except BaseException as exc:  # noqa: BLE001 - relayed via the future
                future.set_exception(exc)

    # ------------------------------------------------------------------
    def submit(self, fn, *args, **kwargs) -> "Future":
        """Enqueue one unit of work; shed it immediately if the queue is full."""
        future: Future = Future()
        try:
            self.queue.put_nowait((future, fn, args, kwargs))
        except queue.Full:
            self.rejected += 1
            raise BackpressureError(
                f"shard {self.index} queue is full "
                f"({self.queue_size} pending requests); retry later",
                scope="shard",
                shard=self.index,
                queue_depth=self.queue_size,
                limit=self.queue_size,
            ) from None
        return future

    def call(self, fn, *args, **kwargs):
        """Submit and wait: the synchronous serving path."""
        if not self._started:
            # Direct execution keeps a stopped (or never-started) shard
            # usable as a plain service, e.g. in single-threaded tools.
            return fn(*args, **kwargs)
        return self.submit(fn, *args, **kwargs).result()

    def queue_depth(self) -> int:
        return self.queue.qsize()

    def stats(self) -> ServiceStats:
        stats = self.service.stats()
        stats.queue_depth = self.queue_depth()
        # Queue-level sheds are counted here, service-level sheds inside the
        # service; the shard's view is the sum of both.
        stats.requests_rejected += self.rejected
        return stats


@dataclass
class FleetStats:
    """Aggregated view over every shard, plus the per-shard breakdown."""

    requests_served: int = 0
    requests_rejected: int = 0
    scenario_cache_hits: int = 0
    scenario_cache_misses: int = 0
    scenario_updates: int = 0
    active_sessions: int = 0
    session_rebuilds: int = 0
    queue_depths: List[int] = field(default_factory=list)
    latency_ms: Dict[str, float] = field(default_factory=dict)
    shards: List[ServiceStats] = field(default_factory=list)

    def to_text(self) -> str:
        """Render the fleet counters as the ``serve --stats`` footer."""
        lines = [
            f"shards:                 {len(self.shards)}",
            f"requests served:        {self.requests_served}",
            f"requests rejected:      {self.requests_rejected} (backpressure)",
            f"serve latency:          p50 {self.latency_ms.get('p50', 0.0):.1f} ms / "
            f"p99 {self.latency_ms.get('p99', 0.0):.1f} ms / "
            f"max {self.latency_ms.get('max_ms', 0.0):.1f} ms "
            f"({int(self.latency_ms.get('samples', 0))} samples)",
            f"scenario cache:         {self.scenario_cache_hits} hits / "
            f"{self.scenario_cache_misses} misses",
            f"scenario updates:       {self.scenario_updates}",
            f"queue depths:           {self.queue_depths}",
            f"active sessions:        {self.active_sessions} "
            f"({self.session_rebuilds} rebuilt after eviction)",
        ]
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, object]:
        """A JSON-friendly view (used by the HTTP ``/stats`` endpoint)."""
        return {
            "shards": len(self.shards),
            "requests_served": self.requests_served,
            "requests_rejected": self.requests_rejected,
            "scenario_cache_hits": self.scenario_cache_hits,
            "scenario_cache_misses": self.scenario_cache_misses,
            "scenario_updates": self.scenario_updates,
            "active_sessions": self.active_sessions,
            "session_rebuilds": self.session_rebuilds,
            "queue_depths": list(self.queue_depths),
            "latency_ms": dict(self.latency_ms),
            "per_shard": [
                {
                    "requests_served": s.requests_served,
                    "requests_rejected": s.requests_rejected,
                    "scenario_cache_hits": s.scenario_cache_hits,
                    "scenario_cache_misses": s.scenario_cache_misses,
                    "queue_depth": s.queue_depth,
                    "active_sessions": s.active_sessions,
                }
                for s in self.shards
            ],
        }


class ShardedExplanationService:
    """Hash-sharded, thread-pooled, snapshot-isolated explanation serving.

    One instance fans requests out across ``num_shards`` independent
    :class:`ExplanationService` shards (see the module docstring for the
    isolation and routing model).  The public surface mirrors the
    single-instance service — :meth:`ask`, :meth:`explain`,
    :meth:`explain_batch`, :meth:`update_scenario`, session management,
    :meth:`stats` — so callers and transports can swap one for the other.
    """

    def __init__(
        self,
        num_shards: int = 4,
        workers_per_shard: int = 2,
        queue_size: int = 64,
        catalog: Optional[FoodCatalog] = None,
        engine: Optional[ExplanationEngine] = None,
        max_cached_scenarios: int = 64,
        closure_cache_size: int = 16,
        max_sessions_per_shard: int = 1024,
        session_ttl: Optional[float] = None,
        snapshot_reads: bool = True,
        start: bool = True,
        default_persona: str = "paper",
        snapshot=None,
    ) -> None:
        if num_shards <= 0:
            raise ValueError("num_shards must be positive")
        if snapshot is not None and engine is not None:
            raise ValueError("pass either engine= or snapshot=, not both")
        loaded: Optional[GraphSnapshot] = None
        if snapshot is not None:
            # Cold-start from the persistent snapshot store: the base
            # graph (term dictionary, triples, indexes) is rebuilt from
            # the struct-packed image instead of re-parsed from turtle,
            # and any persisted closures are seeded into the shard caches
            # below so first-touch requests skip materialisation.  The
            # catalog must be the one the snapshot graph was loaded from
            # (the curated core catalog unless ``catalog=`` says
            # otherwise).
            loaded = snapshot if isinstance(snapshot, GraphSnapshot) else load_snapshot(snapshot)
            shared_catalog = catalog if catalog is not None else build_core_catalog()
            self._base_engine = ExplanationEngine(builder=ScenarioBuilder(
                shared_catalog, base_graph=loaded.graph))
        else:
            # One base engine supplies the shared, read-only ontology + KG
            # graph (and its term dictionary); every shard's builder
            # copies it COW.
            self._base_engine = engine if engine is not None else ExplanationEngine(catalog=catalog)
            shared_catalog = self._base_engine.catalog
        base_graph = self._base_engine.builder._base
        self._shards: List[ServiceShard] = []
        for index in range(num_shards):
            builder = ScenarioBuilder(
                shared_catalog,
                base_graph=base_graph,
                closure_cache=MaterializationCache(max_size=closure_cache_size),
            )
            shard_engine = ExplanationEngine(builder=builder)
            service = ExplanationService(
                engine=shard_engine,
                max_cached_scenarios=max_cached_scenarios,
                registry=SessionRegistry(max_sessions=max_sessions_per_shard,
                                         idle_ttl=session_ttl),
                default_persona=default_persona,
                snapshot_reads=snapshot_reads,
            )
            self._shards.append(ServiceShard(index, service,
                                             queue_size=queue_size,
                                             workers=workers_per_shard))
        self._session_counter = itertools.count(1)
        self._round_robin = itertools.count()
        self.default_persona = default_persona
        self._froze_gc = False
        if loaded is not None:
            self._seed_closures(loaded)
            # The seeded working set (base graph, dictionary, closures) is
            # long-lived by construction: nothing in it dies before the
            # fleet does.  Left in the young/old generations it is exactly
            # the object population that tips the collector into a full
            # gen-2 pass mid-traffic — a multi-second stop-the-world that
            # stalls every in-flight request at once and lands squarely in
            # the tail.  Sweep the construction garbage now, then freeze
            # the survivors into the permanent generation so steady-state
            # collections never retrace them.
            gc.collect()
            gc.freeze()
            self._froze_gc = True
        if start:
            self.start()

    def _seed_closures(self, loaded: GraphSnapshot) -> None:
        """Install snapshot closure entries into the shard caches.

        A labelled entry goes only to its label's home shard (the same
        CRC-32 routing requests use, so the warm closure sits exactly
        where that tenant's traffic lands); unlabelled entries go to every
        shard.  The graphs are shared read-only between shards — the
        caches never mutate a published entry.
        """
        for entry in loaded.closures:
            if entry.label is None:
                targets = self._shards
            else:
                targets = [self._shards[self._hash_key(entry.label) % len(self._shards)]]
            for shard in targets:
                cache = shard.service.engine.builder.closure_cache
                if cache is not None:
                    cache.install(entry.asserted, entry.closure, entry.post_added)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        for shard in self._shards:
            shard.start()

    def stop(self) -> None:
        for shard in self._shards:
            shard.stop()
        if self._froze_gc:
            # Hand the seeded working set back to the collector so a
            # process that retires one fleet and builds another (tests,
            # rolling restarts in-process) doesn't grow the permanent
            # generation without bound.
            gc.unfreeze()
            self._froze_gc = False

    def __enter__(self) -> "ShardedExplanationService":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def warm(self, requests: Optional[Sequence[Tuple]] = None
             ) -> "ShardedExplanationService":
        """Pre-parse the competency templates; optionally pre-build scenarios.

        ``requests`` is an iterable of ``(question, user, context)``
        triples the fleet expects to serve (e.g. the tenants whose
        closures the snapshot seeded).  Each is routed to its tenant's
        home shard — the same CRC-32 routing live traffic uses — and its
        scenario is built into that shard's cache, so the opening burst
        after a cold start pays warm-path cost instead of convoying on
        first-touch scenario builds (see
        :meth:`ExplanationService.prewarm_scenario`).
        """
        for shard in self._shards:
            shard.service.warm()
        if requests:
            for question, user, context in requests:
                shard = self._shard_by_key(user.identifier)
                shard.service.prewarm_scenario(question, user, context)
        return self

    @property
    def num_shards(self) -> int:
        return len(self._shards)

    @property
    def shards(self) -> Sequence[ServiceShard]:
        return tuple(self._shards)

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    @staticmethod
    def _hash_key(key: str) -> int:
        # CRC-32 rather than hash(): stable across processes and runs
        # (str hashing is salted per interpreter), so a session id minted
        # by one front-end routes identically everywhere.
        return zlib.crc32(key.encode("utf-8"))

    def _shard_by_key(self, key: str) -> ServiceShard:
        return self._shards[self._hash_key(key) % len(self._shards)]

    def shard_for_session(self, session_id: str) -> ServiceShard:
        """The shard owning ``session_id`` (parse the ``s<i>:`` prefix)."""
        if session_id.startswith("s") and ":" in session_id:
            prefix = session_id[1:session_id.index(":")]
            if prefix.isdigit():
                return self._shards[int(prefix) % len(self._shards)]
        # Foreign ids (opened directly on a shard's registry) fall back to
        # a stable hash of the id itself.
        return self._shard_by_key(session_id)

    def _shard_for_request(self, request: ExplanationRequest) -> ServiceShard:
        if request.session_id is not None:
            return self.shard_for_session(request.session_id)
        if request.user is not None:
            return self._shard_by_key(request.user.identifier)
        if request.persona is not None:
            return self._shard_by_key(request.persona)
        return self._shard_by_key(self.default_persona)

    # ------------------------------------------------------------------
    # Sessions
    # ------------------------------------------------------------------
    def _mint_session_id(self, shard: ServiceShard) -> str:
        return f"s{shard.index}:{next(self._session_counter)}"

    def open_session(self, user: UserProfile, context: SystemContext) -> UserSession:
        """Open a session on the shard owning this profile's tenant key."""
        shard = self._shard_by_key(user.identifier)
        return shard.service.open_session(
            user, context, session_id=self._mint_session_id(shard))

    def open_persona_session(self, persona_key: str) -> UserSession:
        """Open a persona session on that persona's home shard."""
        user, _ = persona_lookup(persona_key)
        shard = self._shard_by_key(user.identifier)
        return shard.service.open_persona_session(
            persona_key, session_id=self._mint_session_id(shard))

    def close_session(self, session_id: str) -> Optional[UserSession]:
        return self.shard_for_session(session_id).service.close_session(session_id)

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------
    def explain(self, request: ExplanationRequest) -> ExplanationResponse:
        """Serve one request on its home shard's worker pool.

        Raises :class:`BackpressureError` if the shard's queue is full;
        request-level errors (unparseable question, unknown food) propagate
        exactly as the underlying service raises them.
        """
        shard = self._shard_for_request(request)
        return shard.call(shard.service.explain, request)

    def ask(
        self,
        question: str,
        session_id: Optional[str] = None,
        persona: Optional[str] = None,
        user: Optional[UserProfile] = None,
        context: Optional[SystemContext] = None,
        explanation_type: Optional[str] = None,
    ) -> ExplanationResponse:
        """Convenience wrapper mirroring :meth:`ExplanationService.ask`."""
        return self.explain(ExplanationRequest(
            question=question, session_id=session_id, persona=persona,
            user=user, context=context, explanation_type=explanation_type,
        ))

    def explain_batch(self, requests: Sequence[ExplanationRequest]) -> List[ExplanationResponse]:
        """Serve a batch across shards concurrently, preserving order.

        All requests are enqueued up front (so shards work in parallel)
        and the responses are gathered in request order.  A shed request
        surfaces its :class:`BackpressureError` when its slot is reached.
        """
        futures: List[Tuple[Optional[Future], Optional[BackpressureError]]] = []
        for request in requests:
            shard = self._shard_for_request(request)
            try:
                if shard._started:
                    futures.append((shard.submit(shard.service.explain, request), None))
                else:
                    # Degenerate unstarted mode: execute inline.
                    result: Future = Future()
                    result.set_result(shard.service.explain(request))
                    futures.append((result, None))
            except BackpressureError as exc:
                futures.append((None, exc))
        responses: List[ExplanationResponse] = []
        for future, rejection in futures:
            if rejection is not None:
                raise rejection
            responses.append(future.result())
        return responses

    def update_scenario(self, question: str, session_id: Optional[str] = None,
                        persona: Optional[str] = None, **additions) -> Scenario:
        """Apply a scenario update on the owning shard's worker pool."""
        request = ExplanationRequest(question=question, session_id=session_id,
                                     persona=persona)
        shard = self._shard_for_request(request)
        return shard.call(shard.service.update_scenario, question,
                          session_id=session_id, persona=persona, **additions)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def clear_caches(self) -> None:
        for shard in self._shards:
            shard.service.clear_caches()

    def stats(self) -> FleetStats:
        """Aggregate counters plus the per-shard breakdown."""
        per_shard = [shard.stats() for shard in self._shards]
        samples: List[float] = []
        for shard in self._shards:
            samples.extend(shard.service.latency_snapshot())
        return FleetStats(
            requests_served=sum(s.requests_served for s in per_shard),
            requests_rejected=sum(s.requests_rejected for s in per_shard),
            scenario_cache_hits=sum(s.scenario_cache_hits for s in per_shard),
            scenario_cache_misses=sum(s.scenario_cache_misses for s in per_shard),
            scenario_updates=sum(s.scenario_updates for s in per_shard),
            active_sessions=sum(s.active_sessions for s in per_shard),
            session_rebuilds=sum(s.session_rebuilds for s in per_shard),
            queue_depths=[s.queue_depth for s in per_shard],
            latency_ms={
                "p50": percentile(samples, 0.50) * 1000.0,
                "p99": percentile(samples, 0.99) * 1000.0,
                "max_ms": max(samples) * 1000.0 if samples else 0.0,
                "samples": float(len(samples)),
            },
            shards=per_shard,
        )
