"""Request / response / statistics types for the explanation service.

These are plain dataclasses so that any transport (CLI, HTTP framework,
message queue) can construct requests and serialise responses without
importing engine internals.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from ..core.explanation import Explanation
from ..errors import UnavailableError
from ..users.context import SystemContext
from ..users.profile import UserProfile

__all__ = [
    "BackpressureError",
    "ExplanationRequest",
    "ExplanationResponse",
    "ServiceStats",
]


class BackpressureError(UnavailableError):
    """The service shed this request instead of queueing it.

    Raised by admission control when a service instance is already at its
    in-flight limit (``ExplanationService(max_pending=...)``) or when a
    shard's bounded request queue is full
    (:class:`repro.service.shards.ShardedExplanationService`).  It is a
    *typed*, expected overload signal — part of the retryable
    :class:`~repro.errors.UnavailableError` 503 family, so transports map
    it to 503 + ``Retry-After`` instead of a traceback, and every
    rejection is counted in :attr:`ServiceStats.requests_rejected`.
    """

    reason = "backpressure"

    def __init__(self, message: str, *, scope: str = "service",
                 shard: Optional[int] = None,
                 queue_depth: Optional[int] = None,
                 limit: Optional[int] = None,
                 retry_after: Optional[float] = None) -> None:
        super().__init__(message, retry_after=retry_after, scope=scope,
                         shard=shard)
        self.queue_depth = queue_depth
        self.limit = limit

    def to_payload(self) -> Dict[str, Any]:
        """The transport-friendly (JSON-serialisable) view of the rejection."""
        payload = super().to_payload()
        # Keep the pre-UnavailableError payload shape: clients key on
        # ``error == "backpressure"`` plus queue telemetry.
        payload["error"] = "backpressure"
        payload["queue_depth"] = self.queue_depth
        payload["limit"] = self.limit
        return payload


@dataclass(frozen=True)
class ExplanationRequest:
    """One explanation request, addressed by session, persona or explicit user.

    Exactly one addressing mode is needed: a ``session_id`` (for a session
    previously opened on the service), a ``persona`` key (one of
    :data:`repro.users.personas.PERSONAS`), or an explicit ``user`` +
    ``context`` pair.  ``explanation_type`` optionally overrides the
    engine's default question-type mapping.
    """

    question: str
    session_id: Optional[str] = None
    persona: Optional[str] = None
    user: Optional[UserProfile] = None
    context: Optional[SystemContext] = None
    explanation_type: Optional[str] = None


@dataclass
class ExplanationResponse:
    """The service's answer to one :class:`ExplanationRequest`."""

    request: ExplanationRequest
    explanation: Explanation
    session_id: Optional[str] = None
    scenario_cache_hit: bool = False
    elapsed_seconds: float = 0.0
    #: The scenario the explanation was generated from.  With snapshot
    #: reads enabled this is the caller's private COW view — inspecting it
    #: (or even mutating it) can never affect the service's caches or other
    #: requests.  In-process only; :meth:`summary` deliberately omits it.
    scenario: Optional[Any] = None

    @property
    def text(self) -> str:
        """The natural-language rendering of the explanation."""
        return self.explanation.text

    def summary(self) -> Dict[str, Any]:
        """A transport-friendly dictionary view of the response."""
        return {
            "question": self.request.question,
            "explanation_type": self.explanation.explanation_type,
            "text": self.explanation.text,
            "items": [item.describe() for item in self.explanation.items],
            "session_id": self.session_id,
            "scenario_cache_hit": self.scenario_cache_hit,
            "elapsed_seconds": self.elapsed_seconds,
        }


@dataclass
class ServiceStats:
    """Aggregate counters describing one service instance's lifetime.

    ``prepared_query_cache`` is the exception to "one instance": prepared
    queries are cached process-wide (see :func:`repro.sparql.prepare_cached`),
    so those counters include traffic from every service in the process.
    """

    requests_served: int = 0
    #: Requests shed by admission control (never served; see
    #: :class:`BackpressureError`).
    requests_rejected: int = 0
    #: Requests whose deadline expired while the caller was waiting on the
    #: result (:class:`~repro.errors.DeadlineExceededError` raised to the
    #: caller).
    requests_timed_out: int = 0
    #: Queued requests whose deadline had already expired when a worker
    #: dequeued them; skipped before execution, never run.
    requests_expired: int = 0
    #: Queued requests cancelled by a bounded drain
    #: (``stop(timeout=...)``) before any worker picked them up.
    requests_cancelled: int = 0
    #: Worker threads currently alive for this instance's shard (0 for an
    #: unsharded service, which has no workers).
    workers_live: int = 0
    #: Worker threads the watchdog restarted (dead) or retired-and-replaced
    #: (wedged) over the instance's lifetime.
    workers_restarted: int = 0
    #: Circuit-breaker telemetry for this instance's shard:
    #: ``{"state": "closed|open|half_open", "opens": ..., "failures": ...,
    #: "timeouts": ..., "rejected_fast": ...}`` (empty for an unsharded
    #: service).
    breaker: Dict[str, Any] = field(default_factory=dict)
    scenario_cache_hits: int = 0
    scenario_cache_misses: int = 0
    scenario_updates: int = 0
    closure_cache: Dict[str, int] = field(default_factory=dict)
    prepared_query_cache: Dict[str, int] = field(default_factory=dict)
    query_planner: Dict[str, int] = field(default_factory=dict)
    #: Process-wide parallel-reasoner counters (see
    #: :func:`repro.owl.parallel_stats`): pooled vs serial closures and
    #: rounds, retries, fallbacks and the worst observed partition skew.
    parallel_reasoner: Dict[str, float] = field(default_factory=dict)
    #: Storage-engine counters for the engine's base graph family: interned
    #: terms by kind plus the encoded triple count (empty until the lazy
    #: engine is built).
    term_store: Dict[str, int] = field(default_factory=dict)
    active_sessions: int = 0
    #: Sessions transparently rebuilt from their persona after eviction
    #: (see :class:`repro.users.sessions.SessionRegistry`).
    session_rebuilds: int = 0
    #: Serve-latency stats over a sliding window of recent requests:
    #: ``{"p50": ..., "p99": ..., "max_ms": ..., "samples": ...}``
    #: (milliseconds).  ``samples`` and ``max_ms`` keep the percentiles
    #: honest: the window mixes warm-up and steady-state requests, so a
    #: small sample count or an outsized max flags numbers not to trust
    #: as steady-state.
    latency_ms: Dict[str, float] = field(default_factory=dict)
    #: Pending requests in this instance's shard queue (0 for an unsharded
    #: service, which has no queue).
    queue_depth: int = 0

    def to_text(self) -> str:
        """Render the counters as the ``serve --stats`` footer."""
        lines = [
            f"requests served:        {self.requests_served}",
            f"requests rejected:      {self.requests_rejected} (backpressure)",
            f"requests timed out:     {self.requests_timed_out} "
            f"({self.requests_expired} expired in queue, "
            f"{self.requests_cancelled} cancelled by drain)",
            f"workers:                {self.workers_live} live / "
            f"{self.workers_restarted} restarted; breaker "
            f"{self.breaker.get('state', 'n/a')} "
            f"({self.breaker.get('opens', 0)} opens, "
            f"{self.breaker.get('rejected_fast', 0)} fast-failed)",
            f"serve latency:          p50 {self.latency_ms.get('p50', 0.0):.1f} ms / "
            f"p99 {self.latency_ms.get('p99', 0.0):.1f} ms / "
            f"max {self.latency_ms.get('max_ms', 0.0):.1f} ms "
            f"({int(self.latency_ms.get('samples', 0))} samples)",
            f"scenario cache:         {self.scenario_cache_hits} hits / "
            f"{self.scenario_cache_misses} misses",
            f"scenario updates:       {self.scenario_updates}",
            f"closure cache:          {self.closure_cache.get('hits', 0)} hits / "
            f"{self.closure_cache.get('misses', 0)} misses "
            f"({self.closure_cache.get('size', 0)} entries, "
            f"{self.closure_cache.get('extensions', 0)} incremental extensions)",
            f"prepared-query cache:   {self.prepared_query_cache.get('hits', 0)} hits / "
            f"{self.prepared_query_cache.get('misses', 0)} misses "
            f"({self.prepared_query_cache.get('size', 0)} entries, process-wide)",
            f"query planner:          {self.query_planner.get('plan_cache_hits', 0)} plan-cache hits / "
            f"{self.query_planner.get('plans_compiled', 0)} compiled "
            f"({self.query_planner.get('reorderings_applied', 0)} join reorders, "
            f"{self.query_planner.get('filters_pushed', 0)} filters pushed, "
            f"{self.query_planner.get('encoded_bgps', 0)} encoded BGP joins, process-wide)",
            f"term store:             {self.term_store.get('interned_terms', 0)} interned terms "
            f"({self.term_store.get('iris', 0)} IRIs, "
            f"{self.term_store.get('bnodes', 0)} bnodes, "
            f"{self.term_store.get('literals', 0)} literals) / "
            f"{self.term_store.get('encoded_triples', 0)} encoded base triples",
            f"parallel reasoner:      {int(self.parallel_reasoner.get('parallel_closures', 0))} pooled closures / "
            f"{int(self.parallel_reasoner.get('bulk_pool_closures', 0))} bulk closures "
            f"({int(self.parallel_reasoner.get('pool_rounds', 0))} pooled rounds, "
            f"{int(self.parallel_reasoner.get('pool_retries', 0))} retries, "
            f"{int(self.parallel_reasoner.get('pool_fallbacks', 0))} fallbacks, "
            f"skew {self.parallel_reasoner.get('partition_skew', 0.0):.2f}, process-wide)",
            f"active sessions:        {self.active_sessions} "
            f"({self.session_rebuilds} rebuilt after eviction)",
        ]
        return "\n".join(lines)
