"""Seeded, deterministic fault injection for the serving stack.

The chaos suite and ``benchmarks/test_scaling_faults.py`` need to prove
that the fleet keeps its correctness and latency promises *under*
faults — dead workers, latency spikes, transient exceptions, torn
snapshot writes.  Faults that depend on wall-clock timing or unseeded
randomness make those proofs flaky, so this module injects them on a
**schedule over invocation counts**: each hook site keeps a counter, and
a fault fires when the counter hits the indexes (or modulus, or seeded
probability) its :class:`Fault` declares.  The same plan over the same
workload therefore always injects at the same logical points.

Hook sites currently wired into the stack:

====================  ====================================================
``worker``            a shard worker, after dequeuing one request and
                      before executing it (``shards.ServiceShard._work``)
``materialize``       the service's scenario-build boundary, on a
                      scenario-cache miss (``ExplanationService._scenario``)
``query``             the service's query/generation boundary, per served
                      request (``ExplanationService.explain``)
``snapshot_write``    the snapshot writer, before each chunk of the
                      temp-file write (``storage.snapshot.save_snapshot``)
``worker_pool``       a reasoner pool worker, before evaluating one
                      fixpoint partition or bulk closure job
                      (``owl.parallel._eval_partition`` / ``_bulk_close``).
                      Fires in the *child* process: the injector must be
                      active before the pool forks (activate, then call
                      ``run_parallel``/``bulk_materialise``).  ``error``
                      and ``crash`` both surface as a failed task on the
                      coordinator, which retries the partition serially
                      and, on a broken pool, falls back to the
                      single-core oracle — differential equality must
                      survive either way.
====================  ====================================================

Actions:

* ``error`` — raise :class:`InjectedFault` (a typed
  :class:`~repro.errors.TransientServingError`, so the retry path and
  the 503 taxonomy treat it exactly like a real transient);
* ``crash`` — raise :class:`InjectedWorkerCrash` (a ``BaseException``,
  so the worker loop's normal exception handling cannot swallow it: the
  worker thread dies and the watchdog must restore capacity);
* ``latency`` — sleep ``delay_ms`` at the site (a latency spike).

**Zero overhead when disabled**: hook sites are guarded by
``if faults.ACTIVE is not None`` — one module-attribute load and an
identity check, no function call, no allocation.  Activation is explicit
(:func:`activate` / the :func:`injected` context manager) or env-driven
(:func:`install_from_env` reads ``REPRO_FAULTS`` + ``REPRO_FAULT_SEED``;
the CLI ``serve`` command calls it).

The ``REPRO_FAULTS`` spec is a semicolon-separated list of clauses::

    site=action@trigger[:delay_ms]
    trigger := i,j,k... | every=N | p=0.05

e.g. ``REPRO_FAULTS="worker=crash@40,90;worker=latency@every=25:150"``
kills the worker holding the 41st and 91st dequeued requests and adds a
150 ms spike to every 25th.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..errors import TransientServingError

__all__ = [
    "ACTIVE",
    "Fault",
    "FaultInjector",
    "InjectedFault",
    "InjectedWorkerCrash",
    "activate",
    "deactivate",
    "injected",
    "install_from_env",
]

#: Actions a :class:`Fault` may take when it fires.
ACTIONS = ("error", "crash", "latency")


class InjectedFault(TransientServingError):
    """An injected transient exception (the ``error`` action).

    Subclasses :class:`~repro.errors.TransientServingError` so the whole
    stack treats it exactly like a genuine transient infrastructure
    failure: the breaker counts it, idempotent asks retry it, and the
    transport maps an unretried one to a retryable 503.
    """


class InjectedWorkerCrash(BaseException):
    """An injected worker death (the ``crash`` action).

    Deliberately a ``BaseException``: the worker loop's ``except
    BaseException`` around *request execution* relays request failures to
    the caller's future, but an injected crash fires *outside* that block
    and must tear the worker thread down the way a real crash (or an
    OOM-killed thread) would — only the watchdog brings capacity back.
    """


@dataclass(frozen=True)
class Fault:
    """One scheduled fault: where, what, and on which invocations.

    Exactly one trigger should be set: ``at`` (explicit 0-based
    invocation indexes of the site), ``every`` (fire when ``index %
    every == 0``), or ``prob`` (fire with seeded probability per
    invocation).  ``delay_ms`` parameterises the ``latency`` action.
    """

    site: str
    action: str
    at: Tuple[int, ...] = ()
    every: Optional[int] = None
    prob: float = 0.0
    delay_ms: float = 0.0

    def __post_init__(self) -> None:
        if self.action not in ACTIONS:
            raise ValueError(f"unknown fault action {self.action!r} "
                             f"(expected one of {ACTIONS})")

    def matches(self, index: int, rng: random.Random) -> bool:
        """Whether this fault fires on the site's ``index``-th invocation."""
        if self.at:
            return index in self.at
        if self.every is not None:
            return index % self.every == 0
        if self.prob > 0.0:
            return rng.random() < self.prob
        return False


@dataclass
class FaultInjector:
    """A seeded plan of :class:`Fault` entries over named hook sites.

    Thread-safe: the per-site invocation counters and the RNG are
    guarded by one lock; the fault itself (sleep/raise) happens outside
    it.  :attr:`fired` is the audit log tests assert against —
    ``(site, action, invocation_index)`` per injected fault.
    """

    faults: Sequence[Fault] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        self._by_site: Dict[str, List[Fault]] = {}
        for fault in self.faults:
            self._by_site.setdefault(fault.site, []).append(fault)
        self._counts: Dict[str, int] = {}
        self._rng = random.Random(self.seed)
        self._lock = threading.Lock()
        self.fired: List[Tuple[str, str, int]] = []

    # ------------------------------------------------------------------
    def fire(self, site: str, **info: object) -> None:
        """Hook-point entry: sleep or raise if the plan says so.

        ``info`` is free-form context (shard index, worker name) used
        only for the exception message.  Sites without scheduled faults
        cost one dict lookup and a counter bump.
        """
        with self._lock:
            index = self._counts.get(site, 0)
            self._counts[site] = index + 1
            pending = [fault for fault in self._by_site.get(site, ())
                       if fault.matches(index, self._rng)]
            for fault in pending:
                self.fired.append((site, fault.action, index))
        for fault in pending:
            detail = f"injected {fault.action} at {site} (hit #{index}"
            if info:
                detail += ", " + ", ".join(f"{k}={v}" for k, v in sorted(info.items()))
            detail += ")"
            if fault.action == "latency":
                time.sleep(fault.delay_ms / 1000.0)
            elif fault.action == "crash":
                raise InjectedWorkerCrash(detail)
            else:
                raise InjectedFault(detail)

    def count(self, site: str) -> int:
        """How many times ``site`` has been hit so far."""
        with self._lock:
            return self._counts.get(site, 0)

    def fired_at(self, site: str) -> List[Tuple[str, str, int]]:
        """The audit-log entries for one site."""
        with self._lock:
            return [entry for entry in self.fired if entry[0] == site]

    # ------------------------------------------------------------------
    @classmethod
    def from_spec(cls, spec: str, seed: int = 0) -> "FaultInjector":
        """Parse the ``REPRO_FAULTS`` clause grammar (see module docstring)."""
        faults: List[Fault] = []
        for clause in spec.split(";"):
            clause = clause.strip()
            if not clause:
                continue
            try:
                head, _, trigger = clause.partition("@")
                site, _, action = head.partition("=")
                if not site or not action or not trigger:
                    raise ValueError("expected site=action@trigger")
                delay_ms = 0.0
                if ":" in trigger:
                    trigger, _, delay = trigger.partition(":")
                    delay_ms = float(delay)
                if trigger.startswith("every="):
                    faults.append(Fault(site=site, action=action,
                                        every=int(trigger[6:]), delay_ms=delay_ms))
                elif trigger.startswith("p="):
                    faults.append(Fault(site=site, action=action,
                                        prob=float(trigger[2:]), delay_ms=delay_ms))
                else:
                    indexes = tuple(int(part) for part in trigger.split(","))
                    faults.append(Fault(site=site, action=action,
                                        at=indexes, delay_ms=delay_ms))
            except ValueError as exc:
                raise ValueError(f"bad REPRO_FAULTS clause {clause!r}: {exc}") from exc
        return cls(faults=tuple(faults), seed=seed)


#: The process-wide active injector; ``None`` (the default) means every
#: hook site is a no-op guarded by one identity check.
ACTIVE: Optional[FaultInjector] = None


def activate(injector: FaultInjector) -> FaultInjector:
    """Install ``injector`` as the process-wide active plan."""
    global ACTIVE
    ACTIVE = injector
    return injector


def deactivate() -> None:
    """Disable fault injection (hook sites return to zero-overhead)."""
    global ACTIVE
    ACTIVE = None


class injected:
    """``with injected(FaultInjector(...)) as inj:`` — scoped activation.

    Guarantees deactivation on exit so a failing chaos test can never
    leak its fault plan into the rest of the suite.
    """

    def __init__(self, injector: FaultInjector) -> None:
        self._injector = injector

    def __enter__(self) -> FaultInjector:
        return activate(self._injector)

    def __exit__(self, *exc_info: object) -> None:
        deactivate()


def install_from_env(environ: Optional[Mapping[str, str]] = None
                     ) -> Optional[FaultInjector]:
    """Activate an injector from ``REPRO_FAULTS`` / ``REPRO_FAULT_SEED``.

    Returns the active injector, or ``None`` (and deactivates nothing)
    when the env var is unset — the normal production case.
    """
    if environ is None:
        import os

        environ = os.environ
    spec = environ.get("REPRO_FAULTS")
    if not spec:
        return None
    seed = int(environ.get("REPRO_FAULT_SEED", "0"))
    return activate(FaultInjector.from_spec(spec, seed=seed))
