"""Deterministic test harnesses that ship with the package.

Currently one member: :mod:`repro.testing.faults`, the seeded
fault-injection harness the chaos suite and the fault benchmark gate
drive.  The package is a leaf (it imports only :mod:`repro.errors`), so
any layer — the shard worker loop, the service's materialisation and
query boundaries, the snapshot writer — can hook it without cycles.
"""

from . import faults
from .faults import FaultInjector, InjectedFault, InjectedWorkerCrash

__all__ = ["faults", "FaultInjector", "InjectedFault", "InjectedWorkerCrash"]
