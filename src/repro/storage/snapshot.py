"""Struct-packed binary snapshots of a graph family, closures included.

A snapshot is the on-disk image of one dictionary-encoded graph family:
the append-only term table (with kind codes), the encoded triple set as a
flat ID array, the SPO/POS/OSP index metadata and per-predicate counters
used to validate the rebuild, the namespace bindings, and any cached
deductive closures stored as ID-deltas.  Loading re-interns the term
table in ID order (the fresh dictionary assigns the identical IDs
0..n-1) and bulk-inserts the triple array through the graph's encoded
fast path — no tokenising, no term validation, no re-reasoning — which
is why a snapshot load beats a turtle re-parse by an order of magnitude
and a closure-bearing snapshot skips materialisation entirely.

Closure graphs are **delta-chained**: a tenant's materialised closure
shares almost everything with the previous tenant's (both are the base
closure plus a per-tenant sliver), so the writer encodes each closure
against whichever reference is smaller — the base graph or the previous
entry's closure — and records the choice in a per-entry reference byte.
On a fleet snapshot this shrinks both the file and the rebuild by ~50x
versus encoding every closure against the base.

File layout (all integers little-endian)::

    header   magic "RSNP" | u16 version | u16 flags | u64 term_count
             | u64 triple_count | u64 payload_len | i64 fingerprint_hash
             | u32 closure_count | u32 crc32
    payload  namespaces | term table | triple IDs (u32[3*n])
             | index metadata | closure entries

Validation happens *before* any data is trusted: the magic and format
version gate decoding, ``payload_len`` catches truncation, and the CRC-32
— seeded over the header prefix, then run across the payload, so it
covers every file byte except its own field — catches corruption.  After the rebuild the triple
count, the distinct subject/predicate/object counts and the per-predicate
counters are compared against the stored metadata, so a decode bug can
never hand back a silently different graph.  Every failure raises a typed
:class:`SnapshotError` and the caller receives **no graph at all** —
never a partial one.

The header also carries the base graph's O(1)
:meth:`~repro.rdf.graph.Graph.fingerprint` hash.  Within one process a
reloaded graph reproduces it exactly (the content hash is term-content
based, not ID based), which is what the round-trip property tests pin
down; *across* processes Python's salted string hashing makes the hash
incomparable, so cross-process integrity rests on the CRC and the
structural checks, and closure entries are re-keyed by recomputing their
rebuilt asserted graphs' fingerprints in the loading process.
"""

from __future__ import annotations

import gc
import os
import struct
import sys
import tempfile
import zlib
from array import array
from collections import Counter
from dataclasses import dataclass, field
from decimal import Decimal, InvalidOperation
from functools import reduce
from operator import xor
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple, Union

from ..rdf.dictionary import KIND_BNODE, KIND_IRI, KIND_LITERAL
from ..rdf.graph import EncodedTriple, Graph, Triple
from ..rdf.terms import (
    BNode,
    IRI,
    Literal,
    Term,
    XSD_BOOLEAN,
    XSD_DECIMAL,
    XSD_DOUBLE,
    XSD_FLOAT,
    XSD_INTEGER,
    XSD_STRING,
)

__all__ = [
    "MAGIC",
    "FORMAT_VERSION",
    "SnapshotError",
    "ClosureEntry",
    "GraphSnapshot",
    "save_snapshot",
    "load_snapshot",
]

MAGIC = b"RSNP"
#: Version 2 extends the CRC-32 to cover the header prefix (everything
#: before the CRC field itself), closing the v1 gap where a flipped
#: ``flags`` or ``fingerprint_hash`` byte loaded silently.
FORMAT_VERSION = 2

#: magic, version, flags, term_count, triple_count, payload_len,
#: fingerprint_hash, closure_count, payload_crc32
_HEADER = struct.Struct("<4sHHQQQqII")
_U32 = struct.Struct("<I")

#: Term-table kind codes.  Literals split into plain / language-tagged /
#: datatyped so decoding never has to sniff which optional field follows.
_T_IRI = 0
_T_BNODE = 1
_T_LIT_PLAIN = 2
_T_LIT_LANG = 3
_T_LIT_TYPED = 4

#: Closure-entry reference byte: what the closure graph's delta is
#: encoded against.
_CLOSURE_REF_BASE = 0
_CLOSURE_REF_PREV = 1

_U32_MAX = 0xFFFFFFFF


def _bool_value(text: str):
    if text in ("true", "1"):
        return True
    if text in ("false", "0"):
        return False
    return text


def _int_value(text: str):
    try:
        return int(text)
    except ValueError:
        return text


def _float_value(text: str):
    try:
        return float(text)
    except ValueError:
        return text


def _decimal_value(text: str):
    try:
        return Decimal(text)
    except InvalidOperation:
        return text


#: Datatype-string → value parser, mirroring ``Literal._parse_value``
#: exactly but dispatched once per datatype instead of via a chain of IRI
#: equality tests per literal.  Absent datatypes fall back to the lexical
#: form, as ``_parse_value`` does.
_VALUE_PARSERS = {
    str(XSD_BOOLEAN): _bool_value,
    str(XSD_INTEGER): _int_value,
    str(XSD_DOUBLE): _float_value,
    str(XSD_FLOAT): _float_value,
    str(XSD_DECIMAL): _decimal_value,
}


class SnapshotError(RuntimeError):
    """A snapshot could not be written or is not loadable as saved.

    Raised for wrong magic/version, truncation, CRC mismatch, malformed
    payloads and post-rebuild consistency failures.  A failed load never
    returns a partially-populated graph.
    """


@dataclass(frozen=True)
class ClosureEntry:
    """One persisted closure: an asserted graph and its reasoned closure.

    Both graphs must belong to the snapshot base graph's family (share its
    term dictionary); they are stored as ID-deltas against the base.
    ``post_added`` records the triples the closure's post-process pass
    appended (see :class:`repro.owl.closure.MaterializationCache`), so the
    incremental-extension path keeps working after a reload.  ``label`` is
    an optional routing key — a sharded service seeds a labelled entry
    only onto the label's home shard, unlabelled entries onto every shard.
    """

    asserted: Graph
    closure: Graph
    post_added: Tuple[Triple, ...] = ()
    label: Optional[str] = None


@dataclass
class GraphSnapshot:
    """A loaded snapshot: the rebuilt base graph plus its closure entries."""

    graph: Graph
    closures: List[ClosureEntry] = field(default_factory=list)
    #: The fingerprint recorded at save time.  Comparable to
    #: ``graph.fingerprint()`` only within the saving process (hash salt).
    saved_fingerprint: Tuple[int, int] = (0, 0)
    #: Header/term/triple counters for display (``repro snapshot load``).
    stats: Dict[str, int] = field(default_factory=dict)


# ----------------------------------------------------------------------
# Writing
# ----------------------------------------------------------------------
def _pack_str(out: List[bytes], text: str) -> None:
    raw = text.encode("utf-8")
    out.append(_U32.pack(len(raw)))
    out.append(raw)


def _pack_term(out: List[bytes], term: Term) -> None:
    if isinstance(term, Literal):
        if term.language is not None:
            out.append(bytes((_T_LIT_LANG,)))
            _pack_str(out, term.lexical)
            _pack_str(out, term.language)
        elif term.datatype is not None:
            out.append(bytes((_T_LIT_TYPED,)))
            _pack_str(out, term.lexical)
            _pack_str(out, str(term.datatype))
        else:
            out.append(bytes((_T_LIT_PLAIN,)))
            _pack_str(out, term.lexical)
    elif isinstance(term, IRI):
        out.append(bytes((_T_IRI,)))
        _pack_str(out, str(term))
    elif isinstance(term, BNode):
        out.append(bytes((_T_BNODE,)))
        _pack_str(out, str(term))
    else:  # pragma: no cover - the dictionary only interns the three kinds
        raise SnapshotError(f"cannot serialise term {term!r}")


def _pack_id_array(ids: Sequence[int]) -> bytes:
    arr = array("I", ids)
    if sys.byteorder == "big":  # pragma: no cover - LE hosts everywhere we run
        arr.byteswap()
    return arr.tobytes()


def _pack_triples(out: List[bytes], triples: Iterable[EncodedTriple]) -> int:
    """Append ``u32 count`` + flattened sorted triple IDs; return the count."""
    ordered = sorted(triples)
    flat: List[int] = []
    for s, p, o in ordered:
        flat.append(s)
        flat.append(p)
        flat.append(o)
    out.append(_U32.pack(len(ordered)))
    out.append(_pack_id_array(flat))
    return len(ordered)


def _encode_term_triples(graph: Graph, triples: Iterable[Triple],
                         what: str) -> List[EncodedTriple]:
    encoded: List[EncodedTriple] = []
    lookup = graph._dict.ids.get
    for s, p, o in triples:
        es, ep, eo = lookup(s), lookup(p), lookup(o)
        if es is None or ep is None or eo is None:
            raise SnapshotError(
                f"{what} triple ({s!r}, {p!r}, {o!r}) uses terms unknown to "
                "the snapshot base graph's dictionary"
            )
        encoded.append((es, ep, eo))
    return encoded


def save_snapshot(path: Union[str, "object"], graph: Graph,
                  closures: Iterable[ClosureEntry] = ()) -> Dict[str, int]:
    """Write ``graph`` (and optional closure entries) to ``path``, atomically.

    The bytes go to a same-directory temporary file which is flushed,
    ``os.fsync``'d and then ``os.replace``'d onto ``path`` — so a crash
    (or an injected torn write) at any point leaves either the old
    snapshot or the new one at ``path``, never a partial file that would
    clobber the last good image.  The temp file is removed on failure.

    Returns a summary dict (term/triple/closure counts and file size).
    Raises :class:`SnapshotError` if a closure entry does not share the
    base graph's term dictionary, or if the family is too large for the
    u32 ID encoding (never in practice: 4.3 billion terms).
    """
    closure_list = list(closures)
    for entry in closure_list:
        if entry.asserted._dict is not graph._dict or entry.closure._dict is not graph._dict:
            raise SnapshotError(
                "closure entries must belong to the snapshot base graph's "
                "family (share its term dictionary)"
            )

    dictionary = graph._dict
    term_count = len(dictionary.terms)
    triple_count = len(graph._triples)
    if term_count > _U32_MAX or triple_count > _U32_MAX:
        raise SnapshotError("graph family exceeds the u32 snapshot encoding")

    out: List[bytes] = []
    # 1. Namespace bindings.
    bindings = list(graph.namespaces())
    out.append(_U32.pack(len(bindings)))
    for prefix, namespace in bindings:
        _pack_str(out, prefix)
        _pack_str(out, str(namespace))
    # 2. Term table, in ID order: re-interning in this order reassigns the
    #    identical IDs, so the triple arrays need no translation.
    for term in dictionary.terms:
        _pack_term(out, term)
    # 3. The base triple set.
    _pack_triples(out, graph._triples)
    # 4. Index metadata: the rebuild must reproduce these exactly.
    index_stats = graph.index_stats()
    out.append(struct.pack("<III", index_stats["subjects"],
                           index_stats["predicates"], index_stats["objects"]))
    pred_counts = graph._pred_counts
    out.append(_U32.pack(len(pred_counts)))
    for pid in sorted(pred_counts):
        out.append(struct.pack("<II", pid, pred_counts[pid]))
    # 5. Closure entries as ID-deltas.  Asserted graphs diff against the
    #    base (they are base + a per-scenario sliver); closure graphs
    #    diff against whichever reference is smaller — the base, or the
    #    previous entry's closure, which shares the whole materialised
    #    common core (_CLOSURE_REF_* byte records the choice).
    base_triples = graph._triples
    prev_closure: Optional[Set[EncodedTriple]] = None
    for entry in closure_list:
        if entry.label is None:
            out.append(b"\x00")
        else:
            out.append(b"\x01")
            _pack_str(out, entry.label)
        _pack_triples(out, entry.asserted._triples - base_triples)
        _pack_triples(out, base_triples - entry.asserted._triples)
        closure_triples = entry.closure._triples
        base_added = closure_triples - base_triples
        base_removed = base_triples - closure_triples
        if prev_closure is not None:
            prev_added = closure_triples - prev_closure
            prev_removed = prev_closure - closure_triples
            chain = (len(prev_added) + len(prev_removed)
                     < len(base_added) + len(base_removed))
        else:
            chain = False
        if chain:
            out.append(bytes((_CLOSURE_REF_PREV,)))
            _pack_triples(out, prev_added)
            _pack_triples(out, prev_removed)
        else:
            out.append(bytes((_CLOSURE_REF_BASE,)))
            _pack_triples(out, base_added)
            _pack_triples(out, base_removed)
        prev_closure = closure_triples
        _pack_triples(out, _encode_term_triples(graph, entry.post_added,
                                                "post-process"))

    payload = b"".join(out)
    size, content_hash = graph.fingerprint()
    # The CRC is the last header field and covers everything else in the
    # file — header prefix and payload — so any single corrupted byte is
    # a typed load failure.
    prefix = _HEADER.pack(MAGIC, FORMAT_VERSION, 0, term_count, triple_count,
                          len(payload), content_hash, len(closure_list),
                          0)[:-_U32.size]
    crc = zlib.crc32(payload, zlib.crc32(prefix)) & 0xFFFFFFFF
    _write_atomic(str(path), prefix + _U32.pack(crc) + payload)
    return {
        "terms": term_count,
        "triples": triple_count,
        "closures": len(closure_list),
        "bytes": _HEADER.size + len(payload),
    }


#: Chunk size for the atomic writer.  Chunked writes give the fault
#: injector (site ``snapshot_write``, fired once per chunk) realistic torn
#: -write points mid-image, exactly like a crash partway through a save.
_WRITE_CHUNK = 1 << 20


def _write_atomic(path: str, data: bytes) -> None:
    """Spill ``data`` to a same-directory temp file, fsync, then rename.

    ``os.replace`` is atomic on POSIX and Windows for same-filesystem
    paths, which the same-directory temp file guarantees; the fsync
    before it makes sure the rename can never publish a file whose bytes
    are still in the page cache only.
    """
    from ..testing import faults

    directory = os.path.dirname(os.path.abspath(path)) or "."
    fd, tmp_path = tempfile.mkstemp(prefix=os.path.basename(path) + ".tmp.",
                                    dir=directory)
    try:
        with os.fdopen(fd, "wb") as handle:
            for offset in range(0, len(data), _WRITE_CHUNK):
                if faults.ACTIVE is not None:
                    faults.ACTIVE.fire("snapshot_write", path=path,
                                       offset=offset)
                handle.write(data[offset:offset + _WRITE_CHUNK])
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise


# ----------------------------------------------------------------------
# Reading
# ----------------------------------------------------------------------
class _Reader:
    """A bounds-checked cursor over the payload bytes.

    Used for the cold sections (namespaces, index metadata, closure
    deltas).  The hot term-table loop bypasses it — see
    :func:`_rebuild_dictionary` — because per-field method calls dominate
    an order-of-magnitude load at scale.
    """

    __slots__ = ("data", "offset")

    def __init__(self, data: bytes) -> None:
        self.data = data
        self.offset = 0

    def take(self, count: int) -> bytes:
        end = self.offset + count
        if end > len(self.data):
            raise SnapshotError("snapshot payload is truncated")
        chunk = self.data[self.offset:end]
        self.offset = end
        return chunk

    def u8(self) -> int:
        return self.take(1)[0]

    def u32(self) -> int:
        return _U32.unpack(self.take(4))[0]

    def text(self) -> str:
        return self.take(self.u32()).decode("utf-8")

    def id_array(self, count: int) -> array:
        arr = array("I")
        arr.frombytes(self.take(4 * count))
        if sys.byteorder == "big":  # pragma: no cover - LE hosts
            arr.byteswap()
        return arr

    def triples(self, term_count: int) -> List[EncodedTriple]:
        count = self.u32()
        flat = self.id_array(3 * count)
        if flat and max(flat) >= term_count:
            raise SnapshotError("snapshot triple references an unknown term ID")
        it = iter(flat)
        return list(zip(it, it, it))


def _rebuild_dictionary(graph: Graph, reader: _Reader, term_count: int) -> None:
    """Populate the fresh graph's dictionary with IDs 0..term_count-1.

    This is the hottest decode loop, so it runs on flat local offsets
    with ``struct.unpack_from`` and builds the common term shapes by
    direct slot assignment instead of the public constructors (the
    constructors re-derive exactly the fields the snapshot already
    stores).  The CRC-32 has validated the payload byte-for-byte before
    this runs, and the bijectivity check below plus the caller's count
    comparisons reject any structurally inconsistent table.
    """
    data = reader.data
    pos = reader.offset
    unpack_u32 = _U32.unpack_from
    terms: List[Term] = []
    kinds: List[int] = []
    append_term = terms.append
    append_kind = kinds.append
    kind_counts = [0, 0, 0]
    str_new = str.__new__
    lit_new = Literal.__new__
    parsers = _VALUE_PARSERS.get
    datatype_cache: Dict[str, IRI] = {}
    for _ in range(term_count):
        kind = data[pos]
        (length,) = unpack_u32(data, pos + 1)
        pos += 5
        end = pos + length
        text = data[pos:end].decode("utf-8")
        pos = end
        if kind == _T_IRI:
            append_term(str_new(IRI, text))
            append_kind(KIND_IRI)
            kind_counts[KIND_IRI] += 1
            continue
        if kind == _T_LIT_PLAIN:
            literal = lit_new(Literal)
            literal._lexical = text
            literal._language = None
            literal._datatype = None
            literal._value = text
            literal._hash = None
            append_term(literal)
            append_kind(KIND_LITERAL)
            kind_counts[KIND_LITERAL] += 1
            continue
        if kind == _T_LIT_LANG or kind == _T_LIT_TYPED:
            (length,) = unpack_u32(data, pos)
            pos += 4
            end = pos + length
            extra = data[pos:end].decode("utf-8")
            pos = end
            literal = lit_new(Literal)
            literal._lexical = text
            literal._hash = None
            if kind == _T_LIT_LANG:
                # Saved from a constructed Literal, so already lowercased.
                literal._language = extra
                literal._datatype = None
                literal._value = text
            else:
                datatype = datatype_cache.get(extra)
                if datatype is None:
                    datatype = datatype_cache[extra] = IRI(extra)
                literal._language = None
                literal._datatype = datatype
                parser = parsers(extra)
                literal._value = text if parser is None else parser(text)
            append_term(literal)
            append_kind(KIND_LITERAL)
            kind_counts[KIND_LITERAL] += 1
            continue
        if kind == _T_BNODE:
            append_term(str_new(BNode, text))
            append_kind(KIND_BNODE)
            kind_counts[KIND_BNODE] += 1
            continue
        raise SnapshotError(f"unknown term kind code {kind} in snapshot")
    if pos > len(data):
        raise SnapshotError("snapshot payload is truncated")
    reader.offset = pos
    ids = {term: tid for tid, term in enumerate(terms)}
    if len(ids) != term_count:
        raise SnapshotError("snapshot term table is not bijective "
                            "(duplicate terms would remap IDs)")
    dictionary = graph._dict
    dictionary.terms = terms
    dictionary.kinds = kinds
    dictionary.hashes = list(map(hash, terms))
    dictionary.ids = ids
    dictionary._kind_counts = kind_counts


def _bulk_insert(graph: Graph, triples: List[EncodedTriple],
                 flat: array) -> None:
    """Insert a duplicate-free batch into a *fresh* graph.

    A snapshot rebuild starts from an empty graph with no journals and no
    shared (COW) index entries, so the general ``add_encoded_many`` path
    pays for checks that cannot fire here.  The content-hash fold and the
    per-predicate counters run as C-level passes over the flat ID array;
    one Python loop builds the three permutation indexes.
    """
    graph._triples.update(triples)
    hashes = graph._dict.hashes
    hash_it = iter(map(hashes.__getitem__, flat))
    graph._content_hash = reduce(
        xor, map(hash, zip(hash_it, hash_it, hash_it)), graph._content_hash)
    graph._pred_counts.update(Counter(flat[1::3]))
    spo, pos_idx, osp = graph._spo, graph._pos, graph._osp
    for s, p, o in triples:
        entry = spo.get(s)
        if entry is None:
            spo[s] = {p: {o}}
        else:
            leaves = entry.get(p)
            if leaves is None:
                entry[p] = {o}
            else:
                leaves.add(o)
        entry = pos_idx.get(p)
        if entry is None:
            pos_idx[p] = {o: {s}}
        else:
            leaves = entry.get(o)
            if leaves is None:
                entry[o] = {s}
            else:
                leaves.add(s)
        entry = osp.get(o)
        if entry is None:
            osp[o] = {s: {p}}
        else:
            leaves = entry.get(s)
            if leaves is None:
                entry[s] = {p}
            else:
                leaves.add(p)


def _apply_delta(base: Graph, added: List[EncodedTriple],
                 removed: List[EncodedTriple]) -> Graph:
    clone = base.copy()
    for triple in removed:
        clone._discard(triple)
    clone.add_encoded_many(added)
    return clone


def load_snapshot(path: Union[str, "object"]) -> GraphSnapshot:
    """Load a snapshot written by :func:`save_snapshot`.

    Every validation failure — wrong magic or format version, truncation,
    CRC mismatch, malformed payload, or a rebuild that does not reproduce
    the stored counters — raises :class:`SnapshotError`; a partial graph
    is never returned.
    """
    try:
        with open(path, "rb") as handle:
            data = handle.read()
    except OSError as exc:
        raise SnapshotError(f"cannot read snapshot {path}: {exc}") from exc
    if len(data) < _HEADER.size:
        raise SnapshotError("snapshot file is truncated (incomplete header)")
    (magic, version, _flags, term_count, triple_count, payload_len,
     content_hash, closure_count, crc) = _HEADER.unpack_from(data)
    if magic != MAGIC:
        raise SnapshotError(f"not a graph snapshot (magic {magic!r})")
    if version != FORMAT_VERSION:
        raise SnapshotError(
            f"unsupported snapshot format version {version} "
            f"(this build reads version {FORMAT_VERSION})"
        )
    if _flags:
        raise SnapshotError(
            f"unsupported snapshot flags 0x{_flags:04x} "
            f"(format version {FORMAT_VERSION} defines none)"
        )
    payload = data[_HEADER.size:]
    if len(payload) != payload_len:
        raise SnapshotError(
            f"snapshot payload is {len(payload)} bytes, header promises "
            f"{payload_len} (truncated or trailing garbage)"
        )
    if zlib.crc32(payload, zlib.crc32(data[:_HEADER.size - _U32.size])) \
            & 0xFFFFFFFF != crc:
        raise SnapshotError("snapshot failed its CRC-32 check "
                            "(corrupted header or payload)")

    # Everything decoded here is long-lived graph structure, so cyclic-GC
    # passes triggered by the allocation burst are pure overhead; pausing
    # collection for the duration is a significant win on large graphs.
    gc_was_enabled = gc.isenabled()
    if gc_was_enabled:
        gc.disable()
    try:
        return _decode_payload(_Reader(payload), term_count, triple_count,
                               content_hash, closure_count)
    except SnapshotError:
        raise
    except Exception as exc:
        raise SnapshotError(f"malformed snapshot payload: {exc}") from exc
    finally:
        if gc_was_enabled:
            gc.enable()


def _decode_payload(reader: _Reader, term_count: int, triple_count: int,
                    content_hash: int, closure_count: int) -> GraphSnapshot:
    graph = Graph()
    # 1. Namespaces.
    for _ in range(reader.u32()):
        prefix = reader.text()
        graph.bind(prefix, reader.text())
    # 2. Term table.
    _rebuild_dictionary(graph, reader, term_count)
    # 3. Triples, through the fresh-graph bulk insert path.
    stored_count = reader.u32()
    flat = reader.id_array(3 * stored_count)
    if flat and max(flat) >= term_count:
        raise SnapshotError("snapshot triple references an unknown term ID")
    it = iter(flat)
    triples: List[EncodedTriple] = list(zip(it, it, it))
    if len(triples) != triple_count:
        raise SnapshotError(
            f"snapshot holds {len(triples)} triples, header promises "
            f"{triple_count}"
        )
    _bulk_insert(graph, triples, flat)
    # The set insert dedups, so a length mismatch means duplicates.
    if len(graph) != triple_count:
        raise SnapshotError("snapshot triple set contains duplicates")
    # 4. Index metadata must match the rebuild exactly.
    subjects, predicates, objects = struct.unpack("<III", reader.take(12))
    index_stats = graph.index_stats()
    if (index_stats["subjects"], index_stats["predicates"],
            index_stats["objects"]) != (subjects, predicates, objects):
        raise SnapshotError(
            "rebuilt SPO/POS/OSP indexes do not match the snapshot's stored "
            f"metadata (got {index_stats}, stored subjects={subjects} "
            f"predicates={predicates} objects={objects})"
        )
    stored_counts: Dict[int, int] = {}
    for _ in range(reader.u32()):
        pid, count = struct.unpack("<II", reader.take(8))
        stored_counts[pid] = count
    if stored_counts != graph._pred_counts:
        raise SnapshotError("rebuilt per-predicate counters do not match "
                            "the snapshot's stored counters")
    # 5. Closure entries, rebuilt as COW children of the base (or, for a
    #    chained delta, of the previous entry's closure).
    closures: List[ClosureEntry] = []
    prev_closure: Optional[Graph] = None
    for _ in range(closure_count):
        label: Optional[str] = None
        flag = reader.u8()
        if flag == 1:
            label = reader.text()
        elif flag != 0:
            raise SnapshotError(f"invalid closure label flag {flag}")
        asserted = _apply_delta(graph, reader.triples(term_count),
                                reader.triples(term_count))
        ref = reader.u8()
        if ref == _CLOSURE_REF_PREV:
            if prev_closure is None:
                raise SnapshotError("first closure entry cannot be "
                                    "delta-chained to a previous closure")
            reference = prev_closure
        elif ref == _CLOSURE_REF_BASE:
            reference = graph
        else:
            raise SnapshotError(f"invalid closure reference byte {ref}")
        closure = _apply_delta(reference, reader.triples(term_count),
                               reader.triples(term_count))
        prev_closure = closure
        post_added = tuple(graph.decode_triple(t)
                           for t in reader.triples(term_count))
        closures.append(ClosureEntry(asserted=asserted, closure=closure,
                                     post_added=post_added, label=label))
    if reader.offset != len(reader.data):
        raise SnapshotError("snapshot payload has trailing bytes after the "
                            "last closure entry")
    return GraphSnapshot(
        graph=graph,
        closures=closures,
        saved_fingerprint=(triple_count, content_hash),
        stats={
            "terms": term_count,
            "triples": triple_count,
            "closures": closure_count,
            "bytes": _HEADER.size + len(reader.data),
        },
    )
