"""Persistent storage: binary snapshots of dictionary-encoded graph families.

The snapshot store serialises a :class:`~repro.rdf.graph.Graph` — its
term dictionary, encoded triple set, index metadata and any cached
closures — into one compact struct-packed file, and rebuilds it with a
single bulk pass instead of re-parsing turtle and re-materialising.
This is what lets service shards cold-start with zero warm-up (see
``ShardedExplanationService(snapshot=...)``).
"""

from .snapshot import (
    ClosureEntry,
    FORMAT_VERSION,
    GraphSnapshot,
    MAGIC,
    SnapshotError,
    load_snapshot,
    save_snapshot,
)

__all__ = [
    "ClosureEntry",
    "FORMAT_VERSION",
    "GraphSnapshot",
    "MAGIC",
    "SnapshotError",
    "load_snapshot",
    "save_snapshot",
]
