"""Setup shim so that legacy editable installs work offline (no wheel pkg)."""

from setuptools import setup

setup()
