"""Packaging metadata for the FEO reproduction.

Kept as a plain ``setup.py`` (no wheel/pyproject tooling) so that
``pip install -e .`` works offline with only setuptools, as the README's
install instructions promise.
"""

import os

from setuptools import find_packages, setup

_HERE = os.path.abspath(os.path.dirname(__file__))


def _read_long_description() -> str:
    readme = os.path.join(_HERE, "README.md")
    if os.path.exists(readme):
        with open(readme, "r", encoding="utf-8") as handle:
            return handle.read()
    return ""


setup(
    name="feo-repro",
    version="1.1.0",
    description=(
        "Reproduction of 'Semantic Modeling for Food Recommendation "
        "Explanations' (FEO, ICDE 2021): ontology, reasoner, SPARQL engine, "
        "nine explanation generators and a multi-user explanation service."
    ),
    long_description=_read_long_description(),
    long_description_content_type="text/markdown",
    author="FEO reproduction contributors",
    license="MIT",
    python_requires=">=3.8",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    entry_points={
        "console_scripts": [
            "repro=repro.cli:main",
        ],
    },
    classifiers=[
        "Development Status :: 4 - Beta",
        "Intended Audience :: Science/Research",
        "Programming Language :: Python :: 3",
        "Topic :: Scientific/Engineering :: Artificial Intelligence",
    ],
)
